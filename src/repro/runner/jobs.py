"""Job specifications: content-addressed descriptions of simulation work.

A :class:`SimJob` fully describes one unit of work — which trace, which
system configuration, which scheme executor, what warmup — plus the jobs
it depends on (RPG2 needs the baseline's miss profile, Prophet needs a
profiling pass).  Jobs hash to a stable :attr:`SimJob.cache_key`, which is
what makes the on-disk result cache and cross-process deduplication safe:
two jobs with equal keys are guaranteed to describe identical work.

``ENGINE_VERSION`` is folded into every key; bump it whenever the
simulation semantics change so stale cached results are never reused.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..sim.config import CacheConfig, CoreConfig, DRAMConfig, SystemConfig
from ..workloads.base import Trace

#: Version tag for the simulation semantics; part of every cache key.
#: Bump on any change that alters SimResult values for the same inputs —
#: or, defensively, on a wholesale replacement of a simulation subsystem
#: even when the equivalence suites prove bit-identity ("2" is the
#: flat-array cache/hierarchy storage rewrite: the proof covers in-tree
#: workloads and schemes, and one cold cache is cheaper than a stale
#: payload silently masquerading as fresh under an untested combination).
ENGINE_VERSION = "2"


# ----------------------------------------------------------------------
# config (de)serialization
# ----------------------------------------------------------------------
def config_to_dict(config: SystemConfig) -> Dict:
    """JSON-compatible dict of a :class:`SystemConfig` (stable key order)."""
    return asdict(config)


def config_from_dict(d: Dict) -> SystemConfig:
    """Inverse of :func:`config_to_dict`."""
    kwargs = dict(d)
    kwargs["core"] = CoreConfig(**d["core"])
    for cache_field in ("l1i", "l1d", "l2", "l3"):
        kwargs[cache_field] = CacheConfig(**d[cache_field])
    kwargs["dram"] = DRAMConfig(**d["dram"])
    return SystemConfig(**kwargs)


# ----------------------------------------------------------------------
# trace references
# ----------------------------------------------------------------------
#: Per-process memo of by-reference trace resolutions (bounded FIFO).
_RESOLVE_MEMO: Dict[Tuple[str, int, str], "Trace"] = {}
_RESOLVE_MEMO_MAX = 8


def _memo_put(key: Tuple[str, int, str], trace: Trace) -> None:
    _RESOLVE_MEMO[key] = trace
    while len(_RESOLVE_MEMO) > _RESOLVE_MEMO_MAX:
        _RESOLVE_MEMO.pop(next(iter(_RESOLVE_MEMO)))


@dataclass
class TraceRef:
    """A trace by reference (catalog label) or by value (inline arrays).

    Catalog refs stay tiny (workers regenerate the deterministic persona,
    rebuild the generator scenario, or reload the trace file); inline
    refs carry the record arrays and are content-hashed, so custom or
    externally loaded traces cache just as safely.  The ``digest`` is the
    part of :attr:`SimJob.cache_key` that identifies the trace — for
    registry-built traces it is the *source* digest (file bytes /
    generator parameters / persona label), so editing a trace file or a
    scenario definition can never alias previously cached results.
    """

    label: str
    n_records: int
    payload: Optional[Trace] = None
    digest: str = ""

    @classmethod
    def from_catalog(cls, label: str, n_records: int) -> "TraceRef":
        return cls(label, n_records, None, f"catalog:{label}:{n_records}")

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceRef":
        h = hashlib.sha256()
        h.update(f"{trace.name}|{trace.input_name}|{trace.mlp}|".encode())
        for seq in (trace.pcs, trace.lines, trace.gaps):
            h.update(",".join(map(str, seq)).encode())
            h.update(b";")
        return cls(trace.label, len(trace), trace, f"trace:{h.hexdigest()}")

    @classmethod
    def for_trace(cls, trace: Trace) -> "TraceRef":
        """The cheapest safe ref for ``trace``.

        Traces built through the workload-source registry carry a
        ``source_digest`` (see
        :func:`repro.workloads.sources.build_from_source`); those become
        by-reference jobs — tiny to pickle, and workers re-materialize
        the trace from its label.  Anything else (hand-built traces,
        interval slices) is inlined and content-hashed.
        """
        digest = getattr(trace, "source_digest", None)
        if digest:
            # Prime the resolve memo: the caller already holds the built
            # trace, so in-process execution must not regenerate it.
            _memo_put((trace.label, len(trace), digest), trace)
            return cls(trace.label, len(trace), None, digest)
        return cls.from_trace(trace)

    def resolve(self) -> Trace:
        """Materialize the trace (regenerating catalog personas).

        By-reference resolutions are memoized per process (keyed on the
        digest, so two refs with different contents never share): a suite
        run resolves the same workload once per baseline + scheme job,
        and regenerating a 100k+-record persona each time would dominate
        small runs.
        """
        if self.payload is not None:
            return self.payload
        key = (self.label, self.n_records, self.digest)
        trace = _RESOLVE_MEMO.get(key)
        if trace is None:
            from ..workloads.inputs import make_trace

            trace = make_trace(self.label, self.n_records)
            _memo_put(key, trace)
        return trace


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
@dataclass
class SimJob:
    """One unit of simulation work, addressable by content hash.

    ``scheme`` names an executor in
    :data:`repro.runner.schemes.SCHEME_REGISTRY`; ``params`` carries
    executor-specific knobs as a ``((name, value), ...)`` tuple of
    JSON-compatible values; ``deps`` maps executor-defined roles (e.g.
    ``"base"``, ``"profile"``) to the jobs whose payloads the executor
    receives; ``label`` is recorded as the resulting SimResult's scheme
    name (it is part of the cache key — results are cached *as labelled*).
    """

    scheme: str
    trace: TraceRef
    config: SystemConfig
    warmup_frac: float = 0.25
    params: Tuple[Tuple[str, Any], ...] = ()
    deps: Dict[str, "SimJob"] = field(default_factory=dict)
    label: str = ""

    _key: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def cache_key(self) -> str:
        """Stable sha256 over everything that determines the result."""
        if self._key is None:
            spec = {
                "engine": ENGINE_VERSION,
                "scheme": self.scheme,
                "trace": self.trace.digest,
                "config": config_to_dict(self.config),
                "warmup": repr(self.warmup_frac),
                "params": list(self.params),
                "label": self.label,
                "deps": {
                    role: dep.cache_key for role, dep in sorted(self.deps.items())
                },
            }
            blob = json.dumps(spec, sort_keys=True).encode()
            self._key = hashlib.sha256(blob).hexdigest()
        return self._key

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def stripped(self) -> "SimJob":
        """Copy without deps (their payloads travel separately to workers)."""
        return SimJob(
            self.scheme, self.trace, self.config, self.warmup_frac,
            self.params, {}, self.label,
        )
