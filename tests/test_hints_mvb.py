"""Unit tests for the hint machinery and the Multi-path Victim Buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hints import HINT_BUFFER_ENTRIES, CSRHints, HintBuffer, HintSet, PCHint
from repro.core.mvb import MVB_BITS_PER_ENTRY, MVB_ENTRIES, MultiPathVictimBuffer


class TestHintBuffer:
    def test_load_and_lookup(self):
        buf = HintBuffer(capacity=4)
        buf.load({1: PCHint(True, 2), 2: PCHint(False, 0)})
        assert buf.lookup(1) == PCHint(True, 2)
        assert buf.lookup(2) == PCHint(False, 0)
        assert buf.lookup(3) is None

    def test_capacity_prefers_hot_miss_pcs(self):
        buf = HintBuffer(capacity=2)
        hints = {pc: PCHint(True, 1) for pc in (1, 2, 3)}
        buf.load(hints, miss_counts={1: 10, 2: 100, 3: 50})
        assert buf.lookup(2) is not None
        assert buf.lookup(3) is not None
        assert buf.lookup(1) is None  # coldest PC dropped
        assert len(buf) == 2

    def test_reload_clears(self):
        buf = HintBuffer(capacity=4)
        buf.load({1: PCHint(True, 1)})
        buf.load({2: PCHint(True, 1)})
        assert buf.lookup(1) is None

    def test_paper_storage_size(self):
        # 128 entries -> 0.19 KB (Section 4.4).
        buf = HintBuffer()
        assert buf.capacity == HINT_BUFFER_ENTRIES
        assert buf.storage_bytes == pytest.approx(192.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HintBuffer(0)


class TestHintSet:
    def test_storage_bits(self):
        hs = HintSet(pc_hints={1: PCHint(True, 3), 2: PCHint(False, 0)})
        assert hs.storage_bits == 6  # 3 bits per hinted PC

    def test_priority_validation(self):
        with pytest.raises(ValueError):
            PCHint(True, -1)

    def test_csr_defaults(self):
        assert CSRHints(metadata_ways=4).prophet_enabled


class TestMVB:
    def test_insert_requires_positive_priority(self):
        mvb = MultiPathVictimBuffer(entries=64, assoc=4)
        mvb.insert(1, 2, priority=0)
        assert mvb.lookup(1) == []
        mvb.insert(1, 2, priority=1)
        assert mvb.lookup(1) == [2]

    def test_lookup_excludes_table_answer(self):
        mvb = MultiPathVictimBuffer(entries=64, assoc=4, candidates_per_entry=2)
        mvb.insert(1, 2, 1)
        mvb.insert(1, 3, 1)
        assert mvb.lookup(1, exclude=2) == [3]

    def test_candidate_cap(self):
        mvb = MultiPathVictimBuffer(entries=64, assoc=4, candidates_per_entry=1)
        mvb.insert(1, 2, 1)
        mvb.insert(1, 3, 1)  # displaces the cold target
        targets = mvb.lookup(1)
        assert len(targets) == 1

    def test_counters_prioritize_hot_targets(self):
        mvb = MultiPathVictimBuffer(entries=8, assoc=1, candidates_per_entry=1)
        mvb.insert(0, 100, 1)
        for _ in range(3):
            assert mvb.lookup(0) == [100]  # counter warms up
        # A set conflict must evict some entry; the hot one should survive
        # against a cold newcomer in the same set.
        mvb.insert(8, 200, 1)  # maps to the same single-way set 0
        assert mvb.lookup(0) == [100] or mvb.lookup(8) == [200]

    def test_set_eviction_picks_cold_entry(self):
        mvb = MultiPathVictimBuffer(entries=8, assoc=2, candidates_per_entry=1)
        mvb.insert(0, 100, 1)   # set 0
        mvb.insert(4, 200, 1)   # set 0 (4 sets x 2 ways)
        for _ in range(3):
            mvb.lookup(0)
        mvb.insert(8, 300, 1)   # set 0 overflow -> evict coldest (key 4)
        assert mvb.lookup(0) == [100]
        assert mvb.lookup(4) == []

    def test_duplicate_target_not_duplicated(self):
        mvb = MultiPathVictimBuffer(entries=64, assoc=4, candidates_per_entry=2)
        mvb.insert(1, 2, 1)
        mvb.insert(1, 2, 1)
        assert mvb.lookup(1) == [2]

    def test_paper_storage_344kb(self):
        mvb = MultiPathVictimBuffer()
        assert mvb.storage_bytes == MVB_ENTRIES * MVB_BITS_PER_ENTRY // 8
        assert mvb.storage_bytes == 352_256  # 344 KB

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            MultiPathVictimBuffer(candidates_per_entry=0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100), st.integers(0, 3)),
            max_size=300,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_mvb_invariants(self, ops, candidates):
        """Property: buffer never exceeds capacity; per-entry target lists
        never exceed the candidate cap; counters stay in 2-bit range."""
        mvb = MultiPathVictimBuffer(entries=32, assoc=4,
                                    candidates_per_entry=candidates)
        for key, target, prio in ops:
            mvb.insert(key, target, prio)
            mvb.lookup(key)
        assert mvb.live_entries <= mvb.capacity
        entries = mvb.debug_entries()
        per_set = {}
        for line, (targets, counters) in entries.items():
            per_set[line % mvb.n_sets] = per_set.get(line % mvb.n_sets, 0) + 1
            assert len(targets) <= candidates
            assert all(0 <= c <= 3 for c in counters)
        assert all(count <= mvb.assoc for count in per_set.values())
