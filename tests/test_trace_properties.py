"""Property-based tests over the full workload catalog."""

from hypothesis import given, settings, strategies as st

from repro.workloads.base import markov_target_counts
from repro.workloads.inputs import make_trace
from repro.workloads.spec import SPEC_WORKLOADS, make_spec_trace

LABELS = [f"{app}_{inp}" for app, inp in SPEC_WORKLOADS]


@given(st.sampled_from(LABELS), st.integers(500, 4_000))
@settings(max_examples=20, deadline=None)
def test_any_label_any_length(label, n):
    t = make_trace(label, n)
    assert len(t) == n
    assert len(t.pcs) == len(t.lines) == len(t.gaps)
    assert all(pc > 0 for pc in t.pcs)
    assert all(line >= 0 for line in t.lines)


@given(st.sampled_from(LABELS))
@settings(max_examples=7, deadline=None)
def test_markov_counts_bounded_by_distinct_lines(label):
    t = make_trace(label, 4_000)
    counts = markov_target_counts(t.pcs, t.lines)
    distinct = len(set(t.lines))
    assert len(counts) <= distinct
    assert all(n >= 1 for n in counts.values())


@given(st.integers(1_000, 6_000))
@settings(max_examples=10, deadline=None)
def test_prefix_stability(n):
    """A longer trace of the same workload starts with different pools
    (pools scale with length), but the same length is bit-stable."""
    a = make_spec_trace("omnetpp", "inp", n)
    b = make_spec_trace("omnetpp", "inp", n)
    assert a.lines == b.lines


def test_all_spec_inputs_have_positive_gaps():
    from repro.workloads.spec import ASTAR_INPUTS, GCC_INPUTS, SOPLEX_INPUTS

    for app, inputs in [("gcc", GCC_INPUTS), ("astar", ASTAR_INPUTS),
                        ("soplex", SOPLEX_INPUTS)]:
        for inp in inputs:
            t = make_spec_trace(app, inp, 1_000)
            assert min(t.gaps) >= 0
            assert t.mlp >= 1
