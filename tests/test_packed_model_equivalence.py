"""The packed Prophet model must match the reference model bit-for-bit.

This PR rewrote the per-access model state as packed flat-array
structures — :class:`~repro.prefetchers.markov.MetadataTable` (combined
placement keys + typed entry arrays), :class:`~repro.core.mvb
.MultiPathVictimBuffer` (slot arrays), the packed-int trainer entries in
:class:`~repro.prefetchers.triangel.TriangelPrefetcher` — and fused
Prophet's observe pipeline into one closure.  The pre-packing
implementations are preserved (``*Reference`` classes, the same pattern
PR 1 used for the engine loop), and these tests drive both sides with
identical operation streams:

- structure level: randomized insert/lookup/probe/resize interleavings,
  including displacement reporting, counter saturation, and the aliasing
  overwrite quirk;
- prefetcher level: per-observe request-line equality on real workload
  access streams;
- engine level: whole :class:`~repro.sim.results.SimResult` equality on
  the MVB-heavy workloads (mcf / omnetpp) through both the optimized and
  the reference simulation loops.
"""

import dataclasses
import random

import pytest

from repro._accel import set_numpy_enabled
from repro.core.mvb import (
    COUNTER_MAX,
    MultiPathVictimBuffer,
    MultiPathVictimBufferReference,
)
from repro.core.pipeline import OptimizedBinary
from repro.core.prophet import ProphetFeatures
from repro.prefetchers.base import L2AccessInfo
from repro.prefetchers.markov import MetadataTable, MetadataTableReference
from repro.prefetchers.triangel import (
    TriangelPrefetcher,
    TriangelPrefetcherReference,
)
from repro.sim.config import default_config
from repro.sim.engine import run_simulation, run_simulation_reference
from repro.workloads.inputs import make_trace


def table_state(t):
    return {
        "entries": t.entries(),
        "live": t.live_entries,
        "stats": dataclasses.asdict(t.stats),
    }


def drive_tables(a, b, seed, steps=3000, lines=500, resizes=(12, 48, 120, 240)):
    rng = random.Random(seed)
    for step in range(steps):
        op = rng.random()
        line = rng.randrange(lines)
        if op < 0.5:
            target = rng.randrange(lines)
            prio = rng.randrange(4)
            ra = a.insert(line, target, prio)
            rb = b.insert(line, target, prio)
            assert (ra is None) == (rb is None), step
            if ra is not None:
                assert dataclasses.astuple(ra) == dataclasses.astuple(rb), step
        elif op < 0.75:
            assert a.lookup(line) == b.lookup(line), step
        elif op < 0.9:
            assert a.probe(line) == b.probe(line), step
            assert a.priority_of(line) == b.priority_of(line), step
        else:
            cap = rng.choice(resizes)
            a.resize(cap)
            b.resize(cap)
    assert table_state(a) == table_state(b)


class TestMetadataTableEquivalence:
    @pytest.mark.parametrize("replacement", ["srrip", "lru"])
    @pytest.mark.parametrize("prophet_priorities", [False, True])
    def test_randomized_ops(self, replacement, prophet_priorities):
        for seed in range(3):
            a = MetadataTable(
                120, replacement=replacement, prophet_priorities=prophet_priorities
            )
            b = MetadataTableReference(
                120, replacement=replacement, prophet_priorities=prophet_priorities
            )
            drive_tables(a, b, seed)

    def test_single_set_pressure(self):
        """One set: every insert past capacity displaces — maximal churn."""
        a = MetadataTable(12, assoc=12, prophet_priorities=True)
        b = MetadataTableReference(12, assoc=12, prophet_priorities=True)
        drive_tables(a, b, seed=7, steps=2000, lines=100, resizes=(12, 24))

    def test_aliasing_overwrite_reports_probing_line(self):
        """The compressed format's aliasing quirk must be preserved.

        Two keys that collide in (set, tag) share one entry; overwriting
        through the second key reports the *probing* key while the stored
        key line keeps its original value.  The packed table must keep
        this reference behaviour exactly.
        """
        a = MetadataTable(12, assoc=12)
        b = MetadataTableReference(12, assoc=12)
        # Structural indices i and i + n_sets*TAG_SPACE alias; with one
        # set every index lands in it, so indices i and i + 1024 share a
        # tag.  Insert enough distinct keys to wrap the 10-bit tag space.
        for i in range(1030):
            ra = a.insert(i, i + 5000)
            rb = b.insert(i, i + 5000)
            assert (ra is None) == (rb is None), i
            if ra is not None:
                assert dataclasses.astuple(ra) == dataclasses.astuple(rb), i
        assert table_state(a) == table_state(b)

    def test_numpy_resize_path_equivalent(self):
        pytest.importorskip("numpy")
        try:
            set_numpy_enabled(True)
            a = MetadataTable(240)
            for i in range(400):
                a.insert(i, i + 1)
            a.resize(48)
            a.resize(1200)
        finally:
            set_numpy_enabled(None)
        b = MetadataTable(240)
        for i in range(400):
            b.insert(i, i + 1)
        b.resize(48)
        b.resize(1200)
        assert table_state(a) == table_state(b)


class TestMVBEquivalence:
    @pytest.mark.parametrize("geometry", [(8, 1, 1), (8, 2, 1), (32, 4, 2),
                                          (64, 4, 4), (16, 8, 3)])
    def test_randomized_ops(self, geometry):
        entries, assoc, cand = geometry
        for seed in range(3):
            rng = random.Random(seed)
            a = MultiPathVictimBuffer(entries, assoc, cand)
            b = MultiPathVictimBufferReference(entries, assoc, cand)
            for step in range(5000):
                op = rng.random()
                line = rng.randrange(80)
                if op < 0.55:
                    target = rng.randrange(60)
                    prio = rng.randrange(-1, 4)
                    a.insert(line, target, prio)
                    b.insert(line, target, prio)
                else:
                    exclude = rng.choice([None, rng.randrange(60)])
                    assert a.lookup(line, exclude) == b.lookup(line, exclude), step
                assert a.live_entries == b.live_entries, step
            assert a.debug_entries() == b.debug_entries()
            assert (a.inserts, a.hits, a.lookups) == (b.inserts, b.hits, b.lookups)

    def test_counter_saturation(self):
        """Usefulness counters pin at COUNTER_MAX on both sides."""
        a = MultiPathVictimBuffer(entries=8, assoc=2, candidates_per_entry=1)
        b = MultiPathVictimBufferReference(entries=8, assoc=2,
                                           candidates_per_entry=1)
        for m in (a, b):
            m.insert(1, 50, 1)
            for _ in range(COUNTER_MAX + 4):  # past the 2-bit ceiling
                assert m.lookup(1) == [50]
        assert a.debug_entries() == b.debug_entries()
        ((targets, counters),) = [a.debug_entries()[1]]
        assert counters == [COUNTER_MAX]

    def test_displacement_of_coldest_candidate(self):
        """With a full candidate list the first-minimum counter slot goes."""
        for cls in (MultiPathVictimBuffer, MultiPathVictimBufferReference):
            m = cls(entries=8, assoc=2, candidates_per_entry=2)
            m.insert(1, 10, 1)
            m.insert(1, 20, 1)
            m.lookup(1, exclude=20)  # warm target 10 only
            m.insert(1, 30, 1)  # displaces the cold 20
            assert sorted(m.debug_entries()[1][0]) == [10, 30]


def drive_prefetchers(packed, reference, accesses):
    """Feed both prefetchers one access stream; compare request lines."""
    for i, (pc, line) in enumerate(accesses):
        fast = packed.observe(L2AccessInfo(pc=pc, line=line, cycle=0.0,
                                           l2_hit=False))
        slow = reference.observe(L2AccessInfo(pc=pc, line=line, cycle=0.0,
                                              l2_hit=False))
        assert [r.line for r in fast] == [r.line for r in slow], i
        assert [r.trigger_pc for r in fast] == [r.trigger_pc for r in slow], i


def trace_accesses(label, n):
    trace = make_trace(label, n)
    return list(zip(trace.pcs, trace.lines))


class TestTriangelEquivalence:
    def test_observe_stream(self):
        config = default_config()
        packed = TriangelPrefetcher(config)
        reference = TriangelPrefetcherReference(config)
        drive_prefetchers(packed, reference, trace_accesses("mcf_inp", 12000))
        assert table_state(packed.table) == table_state(reference.table)

    def test_trainer_view_matches_reference_entry(self):
        config = default_config()
        packed = TriangelPrefetcher(config)
        reference = TriangelPrefetcherReference(config)
        for pf in (packed, reference):
            entry = pf._trainer_entry(9)
            entry.pattern_conf = 3
            entry.reuse_conf = 12
            entry.last_line = 77
        pv, rv = packed._trainer_entry(9), reference._trainer_entry(9)
        assert (pv.last_line, pv.pattern_conf, pv.reuse_conf, pv.blocked) == (
            rv.last_line, rv.pattern_conf, rv.reuse_conf, rv.blocked
        )
        # runtime_allow mutates blocked identically through the view.
        allowed_p = [packed.runtime_allow(pv) for _ in range(64)]
        allowed_r = [reference.runtime_allow(rv) for _ in range(64)]
        assert allowed_p == allowed_r


class TestProphetEquivalence:
    @pytest.mark.parametrize("label", ["mcf_inp", "omnetpp_omnetpp"])
    def test_observe_stream(self, label):
        config = default_config()
        trace = make_trace(label, 15000)
        binary = OptimizedBinary.from_profile(trace, config)
        packed = binary.prefetcher(config)
        reference = binary.prefetcher_reference(config)
        drive_prefetchers(packed, reference, list(zip(trace.pcs, trace.lines)))
        assert table_state(packed.table) == table_state(reference.table)
        assert packed.mvb.debug_entries() == reference.mvb.debug_entries()
        assert (packed.mvb.inserts, packed.mvb.hits, packed.mvb.lookups) == (
            reference.mvb.inserts, reference.mvb.hits, reference.mvb.lookups
        )

    @pytest.mark.parametrize(
        "features",
        [
            ProphetFeatures(),
            ProphetFeatures(mvb=False),
            ProphetFeatures(mvb_candidates=2),
            ProphetFeatures(replacement=False),
            ProphetFeatures(insertion=False),
            ProphetFeatures(runtime="triage"),
        ],
        ids=["default", "no-mvb", "mvb2", "no-repl", "no-ins", "triage"],
    )
    def test_feature_variants_end_to_end(self, features):
        config = default_config()
        trace = make_trace("mcf_inp", 12000)
        binary = OptimizedBinary.from_profile(trace, config)
        fast = run_simulation(
            trace, config, binary.prefetcher(config, features), "prophet"
        )
        slow = run_simulation(
            trace, config, binary.prefetcher_reference(config, features), "prophet"
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)

    @pytest.mark.parametrize("label", ["mcf_inp", "omnetpp_omnetpp"])
    def test_full_simulation_bit_identical(self, label):
        """Packed model + optimized loop == reference model + seed loop."""
        config = default_config()
        trace = make_trace(label, 20000)
        binary = OptimizedBinary.from_profile(trace, config)
        fast = run_simulation(
            trace, config, binary.prefetcher(config), "prophet"
        )
        slow = run_simulation_reference(
            trace, config, binary.prefetcher_reference(config), "prophet"
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)

    def test_triangel_full_simulation_bit_identical(self):
        config = default_config()
        trace = make_trace("mcf_inp", 20000)
        fast = run_simulation(
            trace, config, TriangelPrefetcher(config), "triangel"
        )
        slow = run_simulation_reference(
            trace, config, TriangelPrefetcherReference(config), "triangel"
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)
