"""Unit tests for the Markov metadata table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prefetchers.markov import MetadataTable


class TestBasics:
    def test_insert_lookup(self):
        t = MetadataTable(1200)
        t.insert(1, 2)
        assert t.lookup(1) == 2
        assert t.lookup(99) is None

    def test_probe_no_side_effects(self):
        t = MetadataTable(1200)
        t.insert(1, 2)
        lookups = t.stats.lookups
        assert t.probe(1) == 2
        assert t.stats.lookups == lookups

    def test_overwrite_same_key_returns_old_target(self):
        t = MetadataTable(1200)
        t.insert(1, 2, priority=3)
        displaced = t.insert(1, 5, priority=1)
        assert displaced is not None
        assert displaced.key_line == 1
        assert displaced.target == 2
        assert displaced.priority == 3  # the displaced mapping's priority
        assert t.lookup(1) == 5
        assert t.stats.overwrites == 1

    def test_same_target_reinsert_is_not_overwrite(self):
        t = MetadataTable(1200)
        t.insert(1, 2)
        assert t.insert(1, 2) is None
        assert t.stats.overwrites == 0

    def test_capacity_rounds_to_sets(self):
        t = MetadataTable(100, assoc=12)
        assert t.capacity == (100 // 12) * 12

    def test_minimum_capacity(self):
        t = MetadataTable(1, assoc=12)
        assert t.capacity == 12


class TestReplacement:
    def test_set_overflow_evicts(self):
        t = MetadataTable(12, assoc=12)  # one set
        for i in range(13):
            t.insert(i, i + 100)
        assert t.stats.replacements == 1
        assert t.live_entries == 12

    def test_allocated_entries_counter(self):
        t = MetadataTable(12, assoc=12)
        for i in range(20):
            t.insert(i, i + 100)
        assert t.stats.allocated_entries == t.live_entries
        assert t.stats.peak_allocated == 12

    def test_prophet_priorities_protect_high_levels(self):
        t = MetadataTable(12, assoc=12, prophet_priorities=True)
        for i in range(11):
            t.insert(i, i + 100, priority=3)
        t.insert(11, 111, priority=0)  # the only low-priority entry
        t.insert(12, 112, priority=3)  # forces a replacement
        # The level-0 entry must be the victim.
        assert t.probe(11) is None
        assert all(t.probe(i) is not None for i in range(11))

    def test_runtime_policy_breaks_priority_ties(self):
        t = MetadataTable(12, assoc=12, replacement="lru", prophet_priorities=True)
        for i in range(12):
            t.insert(i, i + 100, priority=1)
        t.lookup(0)  # refresh key 0
        t.insert(50, 150, priority=1)
        assert t.probe(0) is not None  # refreshed entry survived
        assert t.live_entries == 12


class TestResize:
    def test_shrink_keeps_what_fits(self):
        t = MetadataTable(240, assoc=12)
        for i in range(200):
            t.insert(i, i + 1000)
        t.resize(48)
        assert t.capacity == 48
        assert t.live_entries <= 48
        for key, target, _prio in t.entries():
            assert t.probe(key) == target

    def test_grow_preserves_entries(self):
        t = MetadataTable(24, assoc=12)
        for i in range(20):
            t.insert(i, i + 1000)
        live_before = {k: v for k, v, _ in t.entries()}
        t.resize(1200)
        for key, target in live_before.items():
            assert t.probe(key) == target

    def test_resize_preserves_stats(self):
        t = MetadataTable(24, assoc=12)
        t.insert(1, 2)
        t.resize(48)
        assert t.stats.insertions == 1


class TestStructuralIndices:
    def test_distant_addresses_do_not_alias(self):
        t = MetadataTable(1200)
        # Raw addresses gigabytes apart would alias in a raw-tag design;
        # dense structural indices keep them distinct.
        a, b = 1 << 30, (1 << 30) + 1200 * 7
        t.insert(a, 1)
        t.insert(b, 2)
        assert t.lookup(a) == 1
        assert t.lookup(b) == 2

    def test_hit_rate_tracking(self):
        t = MetadataTable(1200)
        t.insert(1, 2)
        t.lookup(1)
        t.lookup(3)
        assert t.stats.hit_rate == pytest.approx(0.5)


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 500), st.integers(0, 3)),
        max_size=400,
    )
)
@settings(max_examples=40, deadline=None)
def test_table_invariants(ops):
    """Property: live entries never exceed capacity; allocated-entries
    counter always equals live entries; peak is monotone."""
    t = MetadataTable(120, assoc=12, prophet_priorities=True)
    peak_seen = 0
    for key, target, prio in ops:
        if key != target:
            t.insert(key, target, prio)
        assert t.live_entries <= t.capacity
        assert t.stats.allocated_entries == t.live_entries
        assert t.stats.peak_allocated >= peak_seen
        peak_seen = t.stats.peak_allocated
