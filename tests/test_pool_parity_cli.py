"""End-to-end CLI parity: ``--pool loopback`` vs ``--pool local``.

The acceptance bar for the pool backends: the same CLI invocation must
produce byte-identical payloads no matter which backend executed the
jobs (architecture invariant 13).  The fast test pins this at small
scale on every CI run; the ``slow``-marked test runs the full
``all --records 50000 --pool loopback --jobs 8`` sweep from the
acceptance criteria (narrowed to one workload/scheme pair to bound
wall-clock).
"""

import json

import pytest

from repro import api, cli


def _run_json(capsys, extra):
    argv = [
        "fig10", "--records", "3000", "--workloads", "sphinx3_an4",
        "--schemes", "triangel", "--json", "--no-cache",
    ] + extra
    assert cli.main(argv) == 0
    return capsys.readouterr().out


def _payload_bytes(doc_text):
    doc = json.loads(doc_text)
    return json.dumps(doc["payload"], sort_keys=True)


class TestCliPoolParity:
    def test_loopback_payload_is_byte_identical_to_local(self, capsys):
        local = _run_json(capsys, ["--pool", "local"])
        loopback = _run_json(
            capsys, ["--pool", "loopback:2", "--jobs", "2"]
        )
        assert _payload_bytes(local) == _payload_bytes(loopback)
        # The execution metadata records *how* each one ran...
        assert json.loads(local)["execution"]["pool"] == "local"
        assert json.loads(loopback)["execution"]["pool"] == "loopback:2"
        # ...and a from_json round-trip preserves it.
        result = api.ExperimentResult.from_json(loopback)
        assert result.execution["jobs"] == 2

    def test_inline_pool_matches_local(self, capsys):
        local = _run_json(capsys, ["--pool", "local"])
        inline = _run_json(capsys, ["--pool", "inline"])
        assert _payload_bytes(local) == _payload_bytes(inline)

    def test_pool_probe_loopback(self, capsys):
        assert cli.main(["pool", "probe", "loopback:2"]) == 0
        out = capsys.readouterr().out
        assert "driver ENGINE_VERSION=" in out
        assert "2/2 hosts usable" in out

    def test_pool_describe_reports_probe_counters(self, tmp_path, capsys):
        assert cli.main([
            "pool", "describe", "loopback:2",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["backend"] == "loopback"
        assert doc["cache_probe_hits"] == 0
        assert [h["probe_hits"] for h in doc["hosts"]] == [0, 0]
        assert all(h["alive"] for h in doc["hosts"])

    def test_pool_probe_reports_bad_host(self, tmp_path, capsys):
        hosts = tmp_path / "hosts.txt"
        hosts.write_text(
            "bad/0 python=/nonexistent/python3\n"
            "good/1\n"
        )
        # Loopback probing of a hosts file is not a CLI mode; probe the
        # loopback spec for the good path and assert the hosts-file
        # parser rejects garbage through the CLI surface.
        bad = tmp_path / "empty.txt"
        bad.write_text("# nothing here\n")
        with pytest.raises(SystemExit):
            cli.main(["pool", "probe", str(bad)])

    def test_unknown_pool_spec_fails_structured(self, capsys):
        rc = cli.main(["fig10", "--records", "2000", "--json",
                       "--no-cache", "--pool", "mesos"])
        assert rc == 2
        err = json.loads(capsys.readouterr().out)
        assert err["error"]["code"] == "pool-unavailable"

    def test_cas_gc_and_verify(self, tmp_path, capsys):
        # Populate a real cache through a cached run, then maintain it.
        assert cli.main([
            "fig10", "--records", "2000", "--workloads", "sphinx3_an4",
            "--schemes", "triangel", "--cache-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        (tmp_path / "torn.json").write_text("{torn")
        assert cli.main(["cas", "verify", "--cache-dir", str(tmp_path)]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert cli.main(["cas", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 corrupt" in capsys.readouterr().out
        assert cli.main(["cas", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "0 corrupt" in capsys.readouterr().out


@pytest.mark.slow
class TestFullSweepParity:
    def test_all_records_50000_loopback_jobs_8(self, tmp_path, capsys):
        # The literal acceptance invocation, narrowed to one
        # workload/scheme pair so the sweep stays tractable.
        narrow = ["--workloads", "sphinx3_an4", "--schemes", "triangel"]
        assert cli.main(
            ["all", "--records", "50000", "--pool", "local", "--json",
             "--cache-dir", str(tmp_path / "local")] + narrow
        ) == 0
        local = capsys.readouterr().out
        assert cli.main(
            ["all", "--records", "50000", "--pool", "loopback", "--jobs",
             "8", "--json", "--cache-dir", str(tmp_path / "loopback")]
            + narrow
        ) == 0
        loopback = capsys.readouterr().out

        def payloads(blob):
            # Stdout is a concatenation of pretty-printed JSON documents
            # (one per experiment); raw_decode walks them in sequence.
            decoder = json.JSONDecoder()
            docs, pos = [], 0
            while True:
                pos = blob.find("{", pos)
                if pos < 0:
                    break
                doc, pos = decoder.raw_decode(blob, pos)
                docs.append(doc)
            out = {}
            for d in docs:
                payload = d["payload"]
                if d["experiment"] == "overhead":
                    # analysis_seconds is a deliberate wall-clock
                    # *measurement* (paper 5.4.2), computed in the
                    # driver process and never shipped through a pool;
                    # canonicalize it like ExperimentResult.elapsed.
                    for report in payload.values():
                        report["analysis_seconds"] = 0.0
                out[d["experiment"]] = json.dumps(payload, sort_keys=True)
            return out

        assert payloads(local) == payloads(loopback)
