"""Property tests for the serve wire schemas (Hypothesis).

Generalizes the hand-picked digest-knob cases in ``tests/test_serve.py``
into two fuzzed laws:

1. **Digest ≡ canonical identity.**  ``ServeRequest.digest`` must be a
   pure function of the request's canonical form (experiment, resolved
   records, *raw* workload/scheme selection, key-sorted overrides) —
   equal canonical forms always hash equal (key order, dict insertion
   order, list-vs-tuple spelling never matter), and *distinct* canonical
   forms never alias (defaults-vs-explicit included).  Aliasing here
   would silently serve one config's results for another — the serve
   twin of cache-key invariant 2.

2. **Strict validation.**  Any fuzzed corruption of a valid body —
   unknown fields, wrong types, bogus names, malformed overrides — is
   rejected with a structured 400 :class:`ServeError` (JSON-serializable
   envelope, stable kebab-case code), never an arbitrary exception out
   of a worker thread.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.serve import ServeError, ServeRequest  # noqa: E402

#: Small known-good building blocks (kept tiny so digest() — which
#: resolves real workload-source digests — stays fast per example).
EXPERIMENTS = ("fig10", "fig11")
WORKLOADS = ("mcf_inp", "omnetpp_inp", "gcc_166")
SCHEMES = ("triangel", "prophet")
OVERRIDE_VALUES = {
    "l3.size_kb": (1024, 2048, 4096),
    "l2.size_kb": (256, 512, 1024),
}

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def subset_or_none(pool):
    """None (experiment defaults) or a non-empty ordered subset."""
    return st.one_of(
        st.none(),
        st.lists(st.sampled_from(pool), min_size=1,
                 max_size=len(pool), unique=True),
    )


@st.composite
def valid_payloads(draw):
    payload = {"experiment": draw(st.sampled_from(EXPERIMENTS))}
    records = draw(st.one_of(st.none(),
                             st.integers(min_value=1000, max_value=4000)))
    if records is not None:
        payload["records"] = records
    workloads = draw(subset_or_none(WORKLOADS))
    if workloads is not None:
        payload["workloads"] = workloads
    schemes = draw(subset_or_none(SCHEMES))
    if schemes is not None:
        payload["schemes"] = schemes
    paths = draw(st.lists(st.sampled_from(sorted(OVERRIDE_VALUES)),
                          unique=True, max_size=len(OVERRIDE_VALUES)))
    if paths:
        payload["overrides"] = {
            p: draw(st.sampled_from(OVERRIDE_VALUES[p])) for p in paths
        }
    return payload


# ----------------------------------------------------------------------
# digest laws
# ----------------------------------------------------------------------
class TestDigestProperties:
    @COMMON_SETTINGS
    @given(payload=valid_payloads(), data=st.data())
    def test_digest_stable_under_representation_changes(self, payload, data):
        """Key order / container spelling never change the digest."""
        request = ServeRequest.from_payload(dict(payload))
        digest = request.digest()
        assert len(digest) == 64 and int(digest, 16) >= 0
        assert request.job_id() == digest[:32]

        # Shuffle override insertion order and top-level key order.
        shuffled = dict(payload)
        if "overrides" in shuffled:
            items = list(shuffled["overrides"].items())
            perm = data.draw(st.permutations(items))
            shuffled["overrides"] = dict(perm)
        top = data.draw(st.permutations(list(shuffled.items())))
        shuffled = dict(top)
        # Spell list fields as tuples (from_payload accepts either).
        for key in ("workloads", "schemes"):
            if shuffled.get(key) is not None:
                shuffled[key] = tuple(shuffled[key])
        again = ServeRequest.from_payload(shuffled)
        assert again.digest() == digest
        assert again.canonical() == request.canonical()

    @COMMON_SETTINGS
    @given(a=valid_payloads(), b=valid_payloads())
    def test_digests_alias_iff_canonical_forms_equal(self, a, b):
        """Two requests collide exactly when their identities match.

        Covers every knob pair Hypothesis cares to generate — including
        defaults-vs-explicit selections (raw ``None`` differs from a
        spelled-out default list) and records-default resolution (an
        explicit ``records`` equal to the experiment default *is* the
        same request: the result document is identical).
        """
        ra = ServeRequest.from_payload(dict(a))
        rb = ServeRequest.from_payload(dict(b))
        assert (ra.digest() == rb.digest()) == (ra.canonical() == rb.canonical())

    @COMMON_SETTINGS
    @given(payload=valid_payloads())
    def test_round_trip_through_to_dict_preserves_identity(self, payload):
        """A summary-echoed request resubmitted is the same job."""
        request = ServeRequest.from_payload(dict(payload))
        echoed = {k: v for k, v in request.to_dict().items() if v is not None}
        if not request.overrides:
            echoed.pop("overrides", None)
        again = ServeRequest.from_payload(echoed)
        assert again.digest() == request.digest()


# ----------------------------------------------------------------------
# strict validation of fuzzed bodies
# ----------------------------------------------------------------------
def corrupt(payload, kind, junk):
    """Apply one corruption to a valid payload."""
    p = dict(payload)
    if kind == "unknown-field":
        # The junk is the *field name* here: JSON object keys are
        # strings (and non-str/unhashable junk can't be a dict key at
        # all), so anything else falls back to a fixed bogus name.
        p[junk if isinstance(junk, str) and junk else "bogus_field"] = 1
    elif kind == "experiment":
        p["experiment"] = junk
    elif kind == "records":
        p["records"] = junk
    elif kind == "workloads":
        p["workloads"] = junk
    elif kind == "schemes":
        p["schemes"] = junk
    elif kind == "overrides":
        p["overrides"] = junk
    return p


#: Values that are the wrong shape for any field they land in.
JUNK = st.one_of(
    st.none(), st.booleans(), st.integers(max_value=0),
    st.floats(allow_nan=False), st.text(max_size=8).filter(
        lambda s: s not in EXPERIMENTS
    ),
    st.lists(st.integers(), max_size=3),
    st.dictionaries(st.text(max_size=6), st.integers(), max_size=2),
)


class TestStrictValidation:
    @COMMON_SETTINGS
    @given(
        payload=valid_payloads(),
        kind=st.sampled_from(
            ["unknown-field", "experiment", "records",
             "workloads", "schemes", "overrides"]
        ),
        junk=JUNK,
    )
    def test_fuzzed_corruptions_get_structured_400(self, payload, kind, junk):
        corrupted = corrupt(payload, kind, junk)
        try:
            request = ServeRequest.from_payload(corrupted)
        except ServeError as exc:
            assert exc.status == 400
            envelope = exc.envelope()
            code = envelope["error"]["code"]
            assert code and code == code.lower()
            json.dumps(envelope)  # the 400 body must always serialize
        else:
            # The corruption happened to produce a *valid* body (e.g.
            # junk None = field omitted, or a junk dict that is a real
            # override set) — then it must behave like one: digest and
            # canonical form are well-defined.
            assert len(request.digest()) == 64

    @COMMON_SETTINGS
    @given(body=st.one_of(
        st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
        st.text(max_size=20), st.lists(st.integers(), max_size=4),
    ))
    def test_non_object_bodies_rejected(self, body):
        with pytest.raises(ServeError) as exc:
            ServeRequest.from_payload(body)
        assert exc.value.status == 400
        assert exc.value.code == "invalid-request"
