"""Tests for the repro.runner subsystem: jobs, cache, pool, re-plumbing."""

import dataclasses
import json

import pytest

from repro.core.profiler import CounterSet
from repro.experiments.common import (
    SUITE_SCHEMA_VERSION,
    SuiteResults,
    evaluate_suite,
)
from repro.runner import (
    ENGINE_VERSION,
    ResultCache,
    Runner,
    SimJob,
    TraceRef,
    config_from_dict,
    config_to_dict,
    get_runner,
    set_runner,
    use_runner,
)
from repro.runner.runner import payload_from_dict, payload_to_dict
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.sim.results import SimResult
from repro.workloads.spec import make_spec_trace


@pytest.fixture
def config():
    return default_config()


@pytest.fixture
def small_trace():
    return make_spec_trace("mcf", None, 6000)


# ----------------------------------------------------------------------
# specs and keys
# ----------------------------------------------------------------------
class TestConfigRoundTrip:
    def test_default_round_trips(self, config):
        assert config_from_dict(config_to_dict(config)) == config

    def test_variants_round_trip(self, config):
        for variant in (
            config.with_dram_channels(2),
            config.with_l1_prefetcher("ipcp"),
            config.with_tlb(),
            config.with_page_constrained_l1_prefetch(),
        ):
            assert config_from_dict(config_to_dict(variant)) == variant


class TestTraceRef:
    def test_catalog_ref_resolves(self):
        ref = TraceRef.from_catalog("mcf_inp", 5000)
        trace = ref.resolve()
        assert trace.label == "mcf_inp"
        assert len(trace) == 5000

    def test_inline_ref_resolves_to_same_object(self, small_trace):
        ref = TraceRef.from_trace(small_trace)
        assert ref.resolve() is small_trace

    def test_inline_digest_is_content_addressed(self, small_trace):
        again = make_spec_trace("mcf", None, 6000)
        assert TraceRef.from_trace(small_trace).digest == \
            TraceRef.from_trace(again).digest

    def test_different_traces_different_digests(self, small_trace):
        other = make_spec_trace("omnetpp", None, 6000)
        assert TraceRef.from_trace(small_trace).digest != \
            TraceRef.from_trace(other).digest


class TestSimJobKeys:
    def test_key_is_stable(self, config, small_trace):
        ref = TraceRef.from_trace(small_trace)
        a = SimJob("baseline", ref, config)
        b = SimJob("baseline", TraceRef.from_trace(small_trace), config)
        assert a.cache_key == b.cache_key

    def test_key_varies_with_spec(self, config, small_trace):
        ref = TraceRef.from_trace(small_trace)
        base = SimJob("baseline", ref, config)
        keys = {
            base.cache_key,
            SimJob("triangel", ref, config).cache_key,
            SimJob("baseline", ref, config, warmup_frac=0.5).cache_key,
            SimJob("baseline", ref, config.with_dram_channels(2)).cache_key,
            SimJob("baseline", ref, config, label="other").cache_key,
        }
        assert len(keys) == 5

    def test_key_varies_with_deps(self, config, small_trace):
        ref = TraceRef.from_trace(small_trace)
        profile = SimJob("profile", ref, config)
        with_dep = SimJob("prophet", ref, config, deps={"profile": profile})
        other_profile = SimJob("profile", ref, config, warmup_frac=0.3)
        with_other = SimJob(
            "prophet", ref, config, deps={"profile": other_profile}
        )
        assert with_dep.cache_key != with_other.cache_key

    def test_engine_version_in_key(self, config, small_trace):
        # The key must change when ENGINE_VERSION is bumped, so stale
        # caches from older simulation semantics are never reused.
        ref = TraceRef.from_trace(small_trace)
        job = SimJob("baseline", ref, config)
        spec_blob = json.dumps({"engine": ENGINE_VERSION})
        assert ENGINE_VERSION in spec_blob  # sanity: constant exists
        assert len(job.cache_key) == 64


# ----------------------------------------------------------------------
# runner execution
# ----------------------------------------------------------------------
class TestRunnerExecution:
    def test_serial_matches_direct_simulation(self, config, small_trace):
        runner = Runner(jobs=1, use_cache=False)
        [payload] = runner.run(
            [SimJob("baseline", TraceRef.from_trace(small_trace), config)]
        )
        direct = run_simulation(small_trace, config, None, "baseline")
        assert payload == direct

    def test_duplicate_jobs_execute_once(self, config, small_trace):
        runner = Runner(jobs=1, use_cache=False)
        ref = TraceRef.from_trace(small_trace)
        jobs = [SimJob("baseline", ref, config) for _ in range(3)]
        payloads = runner.run(jobs)
        assert runner.stats.executed == 1
        assert payloads[0] == payloads[1] == payloads[2]

    def test_dependency_order_and_payloads(self, config, small_trace):
        ref = TraceRef.from_trace(small_trace)
        profile = SimJob("profile", ref, config)
        prophet = SimJob("prophet", ref, config, deps={"profile": profile})
        runner = Runner(jobs=1, use_cache=False)
        [counters, result] = runner.run([profile, prophet])
        assert isinstance(counters, CounterSet)
        assert isinstance(result, SimResult)
        assert result.scheme == "prophet"

    def test_parallel_results_match_serial(self, config, small_trace):
        ref = TraceRef.from_trace(small_trace)
        jobs = [
            SimJob("baseline", ref, config),
            SimJob("triangel", ref, config),
            SimJob(
                "triage", ref, config,
                params=(("degree", 4), ("replacement", "srrip"),
                        ("initial_ways", 8), ("resize_enabled", False)),
            ),
        ]
        serial = Runner(jobs=1, use_cache=False).run(jobs)
        parallel = Runner(jobs=2, use_cache=False).run(jobs)
        assert serial == parallel

    def test_progress_events(self, config, small_trace):
        events = []
        runner = Runner(
            jobs=1, use_cache=False,
            progress=lambda ev, job, done, total: events.append((ev, done, total)),
        )
        runner.run([SimJob("baseline", TraceRef.from_trace(small_trace), config)])
        assert events == [("start", 0, 1), ("done", 1, 1)]

    def test_unknown_scheme_raises(self, config, small_trace):
        runner = Runner(jobs=1, use_cache=False)
        with pytest.raises(ValueError, match="unknown scheme"):
            runner.run(
                [SimJob("nope", TraceRef.from_trace(small_trace), config)]
            )


class TestResultCache:
    def test_cache_hit_is_bit_identical(self, config, small_trace, tmp_path):
        ref = TraceRef.from_trace(small_trace)
        job = SimJob("baseline", ref, config)
        first = Runner(jobs=1, cache_dir=tmp_path)
        [executed] = first.run([job])
        assert first.stats.executed == 1

        second = Runner(jobs=1, cache_dir=tmp_path)
        [cached] = second.run([job])
        assert second.stats.cache_hits == 1
        assert second.stats.executed == 0
        # Bit-identical: every field equal, including float cycle counts
        # and per-PC maps.
        assert dataclasses.asdict(cached) == dataclasses.asdict(executed)

    def test_counters_cache_round_trip(self, config, small_trace, tmp_path):
        ref = TraceRef.from_trace(small_trace)
        job = SimJob("profile", ref, config)
        [fresh] = Runner(jobs=1, cache_dir=tmp_path).run([job])
        [cached] = Runner(jobs=1, cache_dir=tmp_path).run([job])
        assert cached == fresh

    def test_corrupt_entry_is_a_miss(self, config, small_trace, tmp_path):
        ref = TraceRef.from_trace(small_trace)
        job = SimJob("baseline", ref, config)
        Runner(jobs=1, cache_dir=tmp_path).run([job])
        for path in tmp_path.glob("*.json"):
            path.write_text("{broken")
        rerun = Runner(jobs=1, cache_dir=tmp_path)
        rerun.run([job])
        assert rerun.stats.executed == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", SimResult("w", "s", 1, 1.0, 0, 0, 0, 0, 0))
        assert cache.get("abc") is not None
        assert cache.clear() == 1
        assert cache.get("abc") is None

    def test_payload_tagging(self):
        sim = SimResult("w", "s", 1, 1.0, 0, 0, 0, 0, 0)
        counters = CounterSet(accuracy={1: 0.5}, miss_counts={1: 3})
        assert payload_from_dict(payload_to_dict(sim)) == sim
        assert payload_from_dict(payload_to_dict(counters)) == counters
        with pytest.raises(ValueError):
            payload_from_dict({"kind": "mystery"})


# ----------------------------------------------------------------------
# context plumbing
# ----------------------------------------------------------------------
class TestRunnerContext:
    def test_default_runner_is_serial_uncached(self):
        set_runner(None)
        runner = get_runner()
        assert runner.jobs == 1
        assert runner.cache is None

    def test_use_runner_restores(self):
        set_runner(None)
        original = get_runner()
        override = Runner(jobs=2, use_cache=False)
        with use_runner(override):
            assert get_runner() is override
        assert get_runner() is original
        set_runner(None)


# ----------------------------------------------------------------------
# experiment re-plumbing
# ----------------------------------------------------------------------
class TestEvaluateSuiteThroughRunner:
    def test_custom_factory_falls_back_inline(self, config, small_trace):
        calls = []

        def custom(trace, cfg, base):
            calls.append((trace.label, base.scheme))
            return None  # baseline prefetcher

        suite = evaluate_suite([small_trace], config, {"custom": custom})
        assert calls == [("mcf_inp", "baseline")]
        assert suite.by_workload["mcf_inp"]["custom"].scheme == "custom"

    def test_runner_stats_cover_suite(self, config, small_trace):
        runner = Runner(jobs=1, use_cache=False)
        from repro.experiments.common import DEFAULT_SCHEMES

        evaluate_suite([small_trace], config, DEFAULT_SCHEMES, runner=runner)
        # baseline + rpg2 + triangel + prophet + profile = 5 jobs
        assert runner.stats.executed == 5


class TestSuiteSchemaVersion:
    def test_save_includes_schema_version(self, config, small_trace, tmp_path):
        suite = evaluate_suite([small_trace], config, {})
        path = tmp_path / "suite.json"
        suite.save(path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == SUITE_SCHEMA_VERSION
        reloaded = SuiteResults.load(path)
        assert reloaded.to_dict() == suite.to_dict()

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            SuiteResults.from_dict(
                {
                    "schema_version": SUITE_SCHEMA_VERSION + 1,
                    "schemes": [],
                    "by_workload": {},
                }
            )

    def test_versionless_files_still_load(self):
        # Files written before the schema-version field existed.
        suite = SuiteResults.from_dict({"schemes": [], "by_workload": {}})
        assert suite.schemes == []
