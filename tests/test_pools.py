"""Pool-backend contract tests: inline / local / loopback parity.

Every backend must produce byte-identical payloads for the same jobs
(architecture invariant 13), honor the submit/drain/close contract, and
surface failures on its documented channel — raw exceptions for local
backends, :class:`PoolError` for remote ones.  The loopback backend runs
the full SSH wire protocol (bootstrap, JSON-lines RPC, probing) against
local subprocesses, so CI needs no sshd to pin the distributed path.
"""

import json

import pytest

from repro import api
from repro.runner import (
    ExecutionPolicy,
    HostSpec,
    InlinePool,
    LocalPool,
    LoopbackPool,
    PoolError,
    Runner,
    SimJob,
    SSHPool,
    TraceRef,
    coerce_policy,
    make_runner,
    parse_hosts,
    parse_pool_spec,
    probe_hosts,
    use_runner,
)
from repro.runner.runner import payload_to_dict
from repro.sim.config import default_config
from repro.workloads.spec import make_spec_trace


@pytest.fixture(scope="module")
def config():
    return default_config()


@pytest.fixture(scope="module")
def small_trace():
    return make_spec_trace("mcf", None, 4000)


@pytest.fixture(scope="module")
def job_set(config, small_trace):
    """Three jobs including a dependency chain (profile -> prophet)."""
    ref = TraceRef.from_trace(small_trace)
    profile = SimJob("profile", ref, config)
    return [
        SimJob("baseline", ref, config),
        SimJob("triangel", ref, config),
        SimJob("prophet", ref, config, deps={"profile": profile}),
    ]


@pytest.fixture(scope="module")
def serial_payloads(job_set):
    return Runner(jobs=1, use_cache=False).run(job_set)


@pytest.fixture(scope="module")
def loopback_pool():
    """One shared loopback pool for the module (boot is ~seconds)."""
    pool = LoopbackPool(workers=2)
    yield pool
    pool.close()


def _canon(payloads):
    return [json.dumps(payload_to_dict(p), sort_keys=True) for p in payloads]


# ----------------------------------------------------------------------
# parity: every backend produces byte-identical payloads
# ----------------------------------------------------------------------
class TestBackendParity:
    def test_inline_matches_serial(self, job_set, serial_payloads):
        got = Runner(use_cache=False, pool=InlinePool()).run(job_set)
        assert _canon(got) == _canon(serial_payloads)

    def test_local_parallel_matches_serial(self, job_set, serial_payloads):
        pool = LocalPool(jobs=2)
        try:
            got = Runner(jobs=2, use_cache=False, pool=pool).run(job_set)
        finally:
            pool.close()
        assert _canon(got) == _canon(serial_payloads)

    def test_loopback_matches_serial(
        self, job_set, serial_payloads, loopback_pool
    ):
        # The full wire protocol: jobs travel as spec dicts, dependency
        # payloads as tagged dicts, results come back over stdout.
        got = Runner(use_cache=False, pool=loopback_pool).run(job_set)
        assert _canon(got) == _canon(serial_payloads)

    def test_loopback_pool_reusable_across_runs(
        self, job_set, serial_payloads, loopback_pool
    ):
        # Persistent pools serve many Runner.run calls.
        for _ in range(2):
            got = Runner(use_cache=False, pool=loopback_pool).run(job_set)
            assert _canon(got) == _canon(serial_payloads)


# ----------------------------------------------------------------------
# failure surface
# ----------------------------------------------------------------------
class TestFailureSurface:
    def test_inline_raises_raw_exception(self, config, small_trace):
        runner = Runner(use_cache=False, pool=InlinePool())
        with pytest.raises(ValueError, match="unknown scheme"):
            runner.run(
                [SimJob("nope", TraceRef.from_trace(small_trace), config)]
            )

    def test_local_serial_raises_raw_exception(self, config, small_trace):
        runner = Runner(jobs=1, use_cache=False)
        with pytest.raises(ValueError, match="unknown scheme"):
            runner.run(
                [SimJob("nope", TraceRef.from_trace(small_trace), config)]
            )

    def test_loopback_wraps_job_error_in_pool_error(
        self, config, small_trace, loopback_pool
    ):
        runner = Runner(use_cache=False, pool=loopback_pool)
        with pytest.raises(PoolError, match="unknown scheme"):
            runner.run(
                [SimJob("nope", TraceRef.from_trace(small_trace), config)]
            )
        # A deterministic job failure must not evict hosts or kill the
        # pool: every worker is still alive and the next run succeeds.
        info = loopback_pool.describe()
        assert info["alive"] == info["workers"]
        [payload] = Runner(use_cache=False, pool=loopback_pool).run(
            [SimJob("baseline", TraceRef.from_trace(small_trace), config)]
        )
        assert payload is not None

    def test_submit_after_close_raises(self, config, small_trace):
        pool = LoopbackPool(workers=1)
        pool.close()
        job = SimJob("baseline", TraceRef.from_trace(small_trace), config)
        with pytest.raises(PoolError, match="closed"):
            pool.submit(job.cache_key, job, {})

    def test_close_is_idempotent(self):
        for pool in (InlinePool(), LocalPool(jobs=1)):
            pool.close()
            pool.close()


# ----------------------------------------------------------------------
# describe / contract surface
# ----------------------------------------------------------------------
class TestDescribe:
    def test_backends_report_their_name(self, loopback_pool):
        assert InlinePool().describe()["backend"] == "inline"
        assert LocalPool(jobs=3).describe() == {
            "backend": "local", "jobs": 3, "per_job_timeout": None,
        }
        info = loopback_pool.describe()
        assert info["backend"] == "loopback"
        assert info["workers"] == 2
        assert len(info["hosts"]) == 2
        assert all(h["alive"] for h in info["hosts"])

    def test_runner_pool_info_default_is_local(self):
        info = Runner(jobs=4, use_cache=False).pool_info()
        assert info == {"backend": "local", "jobs": 4,
                        "per_job_timeout": None}


# ----------------------------------------------------------------------
# hosts files
# ----------------------------------------------------------------------
class TestHostsFiles:
    def test_full_option_set(self):
        specs = parse_hosts(
            "# comment line\n"
            "node01\n"
            "user@node02  python=/opt/py/bin/python3 slots=4  # trailing\n"
            "node03 path=/nfs/repro/src env.REPRO_NUMPY=1 env.FOO=bar\n"
        )
        assert [s.name for s in specs] == ["node01", "user@node02", "node03"]
        assert specs[0].slots == 1 and specs[0].python is None
        assert specs[1].python == "/opt/py/bin/python3"
        assert specs[1].slots == 4
        assert specs[2].path == "/nfs/repro/src"
        assert specs[2].env == {"REPRO_NUMPY": "1", "FOO": "bar"}

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError, match="bad option"):
            parse_hosts("node01 fast\n")
        with pytest.raises(ValueError, match="unknown option"):
            parse_hosts("node01 cores=4\n")

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="no hosts"):
            parse_hosts("# only comments\n\n")

    def test_expand_replicates_round_robin(self):
        a, b = HostSpec(name="a", slots=2), HostSpec(name="b")
        expanded = SSHPool._expand([a, b], jobs=6)
        assert len(expanded) == 6
        # Slot expansion first (a, a, b), then round-robin refill.
        assert [s.name for s in expanded] == ["a", "a", "b", "a", "b", "a"]

    def test_expand_keeps_slot_total_without_jobs(self):
        a = HostSpec(name="a", slots=3)
        assert len(SSHPool._expand([a], jobs=None)) == 3


# ----------------------------------------------------------------------
# probing
# ----------------------------------------------------------------------
class TestProbing:
    def test_probe_hosts_loopback_reports_compatible(self):
        rows = probe_hosts(
            [HostSpec(name="loop/0"), HostSpec(name="loop/1")],
            loopback=True,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["ok"] and row["compatible"]
            assert row["error"] is None
            assert row["engine_version"] is not None

    def test_probe_hosts_reports_broken_interpreter(self):
        rows = probe_hosts(
            [HostSpec(name="bad/0", python="/nonexistent/python3")],
            loopback=True, timeout=10.0,
        )
        [row] = rows
        assert not row["ok"]
        assert row["error"]

    def test_pool_with_no_usable_hosts_raises(self):
        with pytest.raises(PoolError, match="no usable pool hosts"):
            LoopbackPool(
                hosts=[HostSpec(name="bad/0", python="/nonexistent/python3")],
                probe_timeout=10.0,
            )

    def test_pool_evicts_bad_host_at_startup(self, config, small_trace):
        pool = LoopbackPool(hosts=[
            HostSpec(name="bad/0", python="/nonexistent/python3"),
            HostSpec(name="good/1"),
        ], probe_timeout=30.0)
        try:
            info = pool.describe()
            assert info["alive"] == 1 and info["dead"] == 1
            [payload] = Runner(use_cache=False, pool=pool).run(
                [SimJob("baseline", TraceRef.from_trace(small_trace), config)]
            )
            assert payload is not None
        finally:
            pool.close()


# ----------------------------------------------------------------------
# ExecutionPolicy
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.backend == "local"
        assert policy.jobs == 1
        assert policy.retries == 2
        assert policy.effective_cache_dir is None

    def test_pool_spec_parsing(self):
        assert parse_pool_spec("local") == ("local", None)
        assert parse_pool_spec("loopback:3") == ("loopback", "3")
        assert parse_pool_spec("ssh:hosts.txt") == ("ssh", "hosts.txt")
        with pytest.raises(ValueError, match="unknown pool backend"):
            parse_pool_spec("mesos")
        with pytest.raises(ValueError, match="hosts file"):
            parse_pool_spec("ssh")

    def test_bad_spec_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown pool backend"):
            ExecutionPolicy(pool="mesos")

    def test_no_cache_wins_over_cache_dir(self, tmp_path):
        policy = ExecutionPolicy(cache_dir=tmp_path, no_cache=True)
        assert policy.effective_cache_dir is None
        assert policy.make_runner().cache is None

    def test_make_pool_kinds(self):
        assert ExecutionPolicy(pool="local").make_pool() is None
        pool = ExecutionPolicy(pool="inline").make_pool()
        assert isinstance(pool, InlinePool)

    def test_to_dict_round_trips(self, tmp_path):
        policy = ExecutionPolicy(
            pool="loopback:4", jobs=8, cache_dir=tmp_path,
            per_job_timeout=30.0, retries=1, verbose=True,
        )
        again = ExecutionPolicy.from_dict(policy.to_dict())
        assert again == policy
        assert json.loads(json.dumps(policy.to_dict())) == policy.to_dict()

    def test_progress_excluded_from_dict_and_equality(self):
        policy = ExecutionPolicy(progress=lambda *a: None)
        assert "progress" not in policy.to_dict()
        assert policy == ExecutionPolicy()

    def test_coerce_policy(self):
        policy = ExecutionPolicy(jobs=3)
        assert coerce_policy(None) is None
        assert coerce_policy(policy) is policy
        assert coerce_policy({"jobs": 3}) == policy
        with pytest.raises(TypeError):
            coerce_policy("local")

    def test_make_runner_records_policy(self):
        policy = ExecutionPolicy(pool="inline", jobs=1)
        runner = policy.make_runner()
        assert runner.policy is policy
        assert runner.pool_info()["backend"] == "inline"
        runner.close()

    def test_context_make_runner_accepts_policy(self):
        runner = make_runner(ExecutionPolicy(pool="inline"))
        assert runner.pool_info()["backend"] == "inline"
        runner.close()
        with pytest.raises(TypeError, match="no extra knobs"):
            make_runner(ExecutionPolicy(), cache_dir="x")

    def test_use_runner_accepts_policy_and_closes(self, config, small_trace):
        from repro.runner import get_runner

        with use_runner(ExecutionPolicy(pool="inline")) as runner:
            assert get_runner() is runner
            [payload] = runner.run(
                [SimJob("baseline", TraceRef.from_trace(small_trace), config)]
            )
            assert payload is not None
        assert runner._closed
        assert get_runner() is not runner


# ----------------------------------------------------------------------
# api.run integration
# ----------------------------------------------------------------------
class TestApiExecution:
    def test_execution_metadata_round_trips(self):
        policy = ExecutionPolicy(pool="inline", retries=1)
        result = api.run("storage", execution=policy)
        assert result.execution == policy.to_dict()
        again = api.ExperimentResult.from_json(result.to_json())
        assert again.execution == policy.to_dict()
        assert ExecutionPolicy.from_dict(again.execution) == policy

    def test_execution_accepts_dict_form(self):
        result = api.run("storage", execution={"pool": "inline"})
        assert result.execution["pool"] == "inline"

    def test_default_policy_recorded(self):
        result = api.run("storage")
        assert result.execution == ExecutionPolicy().to_dict()

    def test_shared_runner_leaves_policy_to_caller(self):
        runner = Runner(jobs=1, use_cache=False)
        result = api.run("storage", runner=runner)
        assert result.execution is None

    def test_flat_kwargs_are_deprecated_but_work(self, tmp_path):
        with pytest.deprecated_call(match="execution=ExecutionPolicy"):
            result = api.run("storage", jobs=1, cache_dir=tmp_path)
        assert result.execution["cache_dir"] == str(tmp_path)

    def test_mixing_flat_kwargs_and_execution_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            api.run("storage", jobs=2, execution=ExecutionPolicy())

    def test_mixing_execution_and_runner_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            api.run(
                "storage",
                execution=ExecutionPolicy(),
                runner=Runner(use_cache=False),
            )
