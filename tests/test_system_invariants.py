"""System-level invariants under randomized streams and fault injection.

These tests stress the substrate the way no figure does: random access
streams, adversarial resize thrash, MSHR floods, and prefetchers that
misbehave.  The assertions are structural — accounting identities,
capacity bounds, monotonicity — rather than performance shapes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.hierarchy import Hierarchy
from repro.prefetchers.base import L2Prefetcher, PrefetchRequest
from repro.prefetchers.markov import MetadataTable
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.base import Trace
from repro.workloads.spec import make_spec_trace

# Compact strategies for access streams.
small_lines = st.lists(st.integers(0, 500), min_size=1, max_size=300)
small_pcs = st.integers(1, 8)


def random_trace(seed: int, n: int = 2000, n_pcs: int = 6, space: int = 4000) -> Trace:
    rng = random.Random(seed)
    pcs = [0x1000 + rng.randrange(n_pcs) for _ in range(n)]
    lines = [rng.randrange(space) for _ in range(n)]
    gaps = [rng.randrange(8) for _ in range(n)]
    return Trace("rand", str(seed), pcs, lines, gaps)


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------
class TestCacheInvariants:
    @given(lines=small_lines)
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = Cache("t", 64 * 64, 4, 1, "lru")  # 64 lines
        for i, line in enumerate(lines):
            cache.fill(line, float(i))
        resident = sum(1 for line in set(lines) if cache.contains(line))
        assert resident <= 64

    @given(lines=small_lines)
    @settings(max_examples=50)
    def test_probe_after_fill(self, lines):
        cache = Cache("t", 256 * 64, 8, 1, "plru")
        for i, line in enumerate(lines):
            cache.fill(line, float(i))
        # The most recently filled line must be resident.
        assert cache.contains(lines[-1])

    def test_data_ways_shrink_evicts(self):
        config = default_config()
        h = Hierarchy(config)
        # Fill some L3 content via demand traffic.
        for i in range(2000):
            h.demand_access(1, i * 3, float(i) * 30)
        h.set_metadata_ways(config.l3.assoc // 2)
        assert len(h.l3.resident_lines()) <= h.l3.capacity_lines


# ----------------------------------------------------------------------
# Metadata table invariants
# ----------------------------------------------------------------------
class TestMetadataTableInvariants:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 300)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=50)
    def test_accounting_identity(self, ops):
        table = MetadataTable(capacity_entries=96)
        for key, target in ops:
            table.insert(key, target)
        assert table.live_entries == len(table.entries())
        assert table.live_entries <= table.capacity
        assert (
            table.stats.insertions - table.stats.replacements
            >= table.live_entries > 0
        )
        assert table.stats.peak_allocated >= table.live_entries

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 200)),
            min_size=1,
            max_size=200,
        ),
        new_capacity=st.sampled_from([12, 48, 96, 192]),
    )
    @settings(max_examples=40)
    def test_resize_preserves_subset(self, ops, new_capacity):
        table = MetadataTable(capacity_entries=96)
        for key, target in ops:
            table.insert(key, target)
        before = {(k, t) for k, t, _ in table.entries()}
        table.resize(new_capacity)
        after = {(k, t) for k, t, _ in table.entries()}
        assert after <= before
        assert table.live_entries <= table.capacity

    def test_resize_thrash_stays_consistent(self):
        table = MetadataTable(capacity_entries=192)
        rng = random.Random(3)
        for i in range(500):
            table.insert(rng.randrange(400), rng.randrange(400))
            if i % 50 == 49:
                table.resize(12 if (i // 50) % 2 else 192)
        assert table.live_entries == len(table.entries())
        assert table.live_entries <= table.capacity


# ----------------------------------------------------------------------
# Hierarchy invariants under random traffic
# ----------------------------------------------------------------------
class TestHierarchyInvariants:
    def test_latency_at_least_l1_hit(self):
        config = default_config()
        h = Hierarchy(config)
        rng = random.Random(11)
        for i in range(1500):
            r = h.demand_access(1 + rng.randrange(4), rng.randrange(5000), i * 25.0)
            assert r.latency >= config.l1d.hit_latency

    def test_dram_read_breakdown_sums(self):
        config = default_config()
        h = Hierarchy(config, TriangelPrefetcher(config))
        rng = random.Random(13)
        for i in range(3000):
            h.demand_access(1 + rng.randrange(4), rng.randrange(8000), i * 25.0)
        s = h.dram.stats
        assert s.demand_reads + s.prefetch_reads + s.metadata_reads == s.reads

    def test_useful_never_exceeds_issued(self):
        trace = make_spec_trace("mcf", "inp", 15_000)
        config = default_config()
        res = run_simulation(trace, config, TriangelPrefetcher(config), "t")
        assert 0 <= res.pf_useful <= res.pf_issued
        for pc, useful in res.useful_by_pc.items():
            assert useful <= res.issued_by_pc.get(pc, 0)

    def test_resize_thrash_mid_run(self):
        """Violent way-count oscillation must not corrupt the hierarchy."""
        config = default_config()
        pf = TriangelPrefetcher(config)
        h = Hierarchy(config, pf)
        rng = random.Random(17)
        for i in range(2000):
            h.demand_access(1 + rng.randrange(4), rng.randrange(6000), i * 25.0)
            if i % 100 == 99:
                h.set_metadata_ways(8 if (i // 100) % 2 else 0)
        assert len(h.l3.resident_lines()) <= h.l3.capacity_lines
        assert pf.table.live_entries <= pf.table.capacity

    def test_metadata_ways_bounds_enforced(self):
        h = Hierarchy(default_config())
        with pytest.raises(ValueError):
            h.set_metadata_ways(-1)
        with pytest.raises(ValueError):
            h.set_metadata_ways(17)


# ----------------------------------------------------------------------
# Fault injection: misbehaving prefetchers must not break accounting
# ----------------------------------------------------------------------
class _FloodPrefetcher(L2Prefetcher):
    """Asks for an absurd number of lines on every access."""

    name = "flood"

    def observe(self, access):
        return [
            PrefetchRequest(access.line + k + 1, access.pc) for k in range(64)
        ]


class _NegativeLinePrefetcher(L2Prefetcher):
    """Emits invalid (negative) line addresses."""

    name = "negative"

    def observe(self, access):
        return [PrefetchRequest(-5, access.pc), PrefetchRequest(access.line, access.pc)]


class _SelfPrefetcher(L2Prefetcher):
    """Prefetches exactly the line being accessed (a no-op request)."""

    name = "self"

    def observe(self, access):
        return [PrefetchRequest(access.line, access.pc)]


class TestFaultInjection:
    def _run(self, pf, n=4000):
        trace = random_trace(29, n=n, space=20_000)
        return run_simulation(trace, default_config(), pf, pf.name,
                              warmup_frac=0.0)

    def test_flood_prefetcher_is_throttled_not_fatal(self):
        res = self._run(_FloodPrefetcher())
        assert res.instructions > 0
        # MSHR + queue caps keep issue volume finite (< degree x accesses).
        assert res.pf_issued < 64 * 4000

    def test_negative_lines_are_rejected(self):
        res = self._run(_NegativeLinePrefetcher())
        assert res.instructions > 0
        assert res.pf_issued == 0  # negative dropped; same-line dropped

    def test_self_prefetch_is_a_noop(self):
        res = self._run(_SelfPrefetcher())
        assert res.pf_issued == 0

    def test_flood_slows_but_never_corrupts_dram_stats(self):
        res = self._run(_FloodPrefetcher(), n=2500)
        assert res.dram_reads >= 0 and res.dram_writes >= 0
        assert res.dram_metadata_traffic == 0
