"""Unit tests for SimResult metrics and the timing model edge cases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import default_config
from repro.sim.cpu import TimingModel
from repro.sim.results import SimResult, format_table, geomean


def result(**overrides):
    base = dict(
        label="w", scheme="s", instructions=100, cycles=50.0,
        l2_demand_misses=10, dram_reads=5, dram_writes=2,
        pf_issued=8, pf_useful=6,
    )
    base.update(overrides)
    return SimResult(**base)


class TestSimResult:
    def test_ipc(self):
        assert result().ipc == 2.0
        assert result(cycles=0.0).ipc == 0.0

    def test_accuracy(self):
        assert result().accuracy == 0.75
        assert result(pf_issued=0).accuracy == 0.0

    def test_accuracy_of_pc(self):
        r = result(issued_by_pc={1: 10}, useful_by_pc={1: 7})
        assert r.accuracy_of(1) == 0.7
        assert r.accuracy_of(2) == 0.0

    def test_coverage_clamped_at_zero(self):
        base = result(l2_demand_misses=10)
        worse = result(l2_demand_misses=20)
        assert worse.coverage_over(base) == 0.0

    def test_coverage_positive(self):
        base = result(l2_demand_misses=10)
        better = result(l2_demand_misses=4)
        assert better.coverage_over(base) == pytest.approx(0.6)

    def test_coverage_zero_baseline(self):
        base = result(l2_demand_misses=0)
        assert result().coverage_over(base) == 0.0

    def test_traffic(self):
        base = result(dram_reads=10, dram_writes=0)
        r = result(dram_reads=12, dram_writes=3)
        assert r.traffic_over(base) == 1.5

    def test_dram_traffic_sum(self):
        assert result().dram_traffic == 7


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == 4.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == 4.0

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_between_min_and_max(self, vals):
        g = geomean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "-" in text

    def test_column_alignment(self):
        text = format_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(set(len(line.rstrip()) <= len("longer") + 2 for line in lines))


class TestTimingModelEdges:
    def test_zero_gap(self):
        tm = TimingModel(10, 12.0, 4)
        assert tm.instruction_cycles(0) == pytest.approx(0.1)

    def test_exact_hide_boundary(self):
        tm = TimingModel(10, 12.0, 4)
        assert tm.stall_cycles(12.0) == 0.0
        assert tm.stall_cycles(12.0 + 4.0) == pytest.approx(1.0)

    def test_workload_mlp_overrides_config(self):
        cfg = default_config()
        tm = TimingModel.for_config(cfg, workload_mlp=2)
        assert tm.mlp == 2
        tm_default = TimingModel.for_config(cfg, workload_mlp=0)
        assert tm_default.mlp == cfg.mlp

    @given(st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_stall_monotone_in_latency(self, lat):
        tm = TimingModel(10, 12.0, 4)
        assert tm.stall_cycles(lat) <= tm.stall_cycles(lat + 1.0)
        assert tm.stall_cycles(lat) >= 0.0
