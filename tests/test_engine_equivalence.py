"""The optimized engine loop must match the seed loop bit-for-bit.

``run_simulation`` was restructured for throughput (split warmup /
measuring phases, inlined timing model, defaultdict accounting);
``run_simulation_reference`` preserves the seed implementation.  Any
difference in any SimResult field means the optimization changed
semantics, not just speed.
"""

import dataclasses

import pytest

from repro.core.pipeline import OptimizedBinary
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation, run_simulation_reference
from repro.workloads.inputs import make_trace


@pytest.fixture(scope="module")
def config():
    return default_config()


def assert_identical(trace, config, make_pf, scheme, **kwargs):
    fast = run_simulation(trace, config, make_pf(), scheme, **kwargs)
    slow = run_simulation_reference(trace, config, make_pf(), scheme, **kwargs)
    assert dataclasses.asdict(fast) == dataclasses.asdict(slow)


@pytest.mark.parametrize("label", ["mcf_inp", "omnetpp_omnetpp", "gcc_166"])
def test_baseline_identical(label, config):
    trace = make_trace(label, 20000)
    assert_identical(trace, config, lambda: None, "baseline")


def test_triangel_identical(config):
    trace = make_trace("mcf_inp", 20000)
    assert_identical(
        trace, config, lambda: TriangelPrefetcher(config), "triangel"
    )


def test_prophet_identical(config):
    trace = make_trace("mcf_inp", 20000)
    binary = OptimizedBinary.from_profile(trace, config)
    assert_identical(
        trace, config, lambda: binary.prefetcher(config), "prophet"
    )


def test_zero_warmup_identical(config):
    trace = make_trace("gcc_166", 12000)
    assert_identical(trace, config, lambda: None, "baseline", warmup_frac=0.0)


def test_heavy_warmup_and_resize_window_identical(config):
    trace = make_trace("mcf_inp", 20000)
    assert_identical(
        trace, config, lambda: TriangelPrefetcher(config), "triangel",
        warmup_frac=0.6, resize_window=1024,
    )


def test_per_pc_miss_accounting_identical(config):
    # The seed pattern `miss_by_pc.get(pc, 0) + 1` was replaced with a
    # defaultdict; the resulting map must be exactly equal.
    trace = make_trace("mcf_inp", 20000)
    fast = run_simulation(trace, config, None, "baseline")
    slow = run_simulation_reference(trace, config, None, "baseline")
    assert dict(fast.miss_by_pc) == dict(slow.miss_by_pc)
    assert dict(fast.issued_by_pc) == dict(slow.issued_by_pc)
