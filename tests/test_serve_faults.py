"""Fault-injection suite for the serve hardening layer.

Drives the real HTTP stack into its failure modes via the shared
harness in :mod:`serve_faults`: worker-killing faults mid-job, queue
overload (429 + ``Retry-After``), draining shutdown, durable-job
recovery across a restart on the same cache dir, and clients vanishing
mid-SSE.  The point of every test: the service *degrades*, never
collapses — jobs fail with envelopes, refusals carry backoff hints,
restarts answer for old job ids byte-identically, and no fault on one
connection or job ever reaches a worker or another client.
"""

import json
import threading
import time

import pytest
from serve_faults import (
    abrupt_sse_disconnect,
    faulty_api_run,
    live_service,
    raw_response,
    start_service,
)

import repro.api as api
from repro import faults as _faults
from repro.faults import make_schedule
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    ServeClient,
    ServeError,
    ServeRequest,
    canonical_result_json,
)

#: A tiny but real simulation request (two SimJobs: baseline + triangel).
TINY = {
    "experiment": "fig10",
    "records": 2500,
    "workloads": ["mcf_inp"],
    "schemes": ["triangel"],
}


def distinct(i: int, records: int = 2000) -> dict:
    """The i-th member of a family of never-aliasing tiny requests."""
    return {**TINY, "records": records + 100 * i}


def teardown(server, service) -> None:
    server.shutdown()
    server.server_close()
    service.stop()


# ----------------------------------------------------------------------
# worker supervision: a job can never take a worker down
# ----------------------------------------------------------------------
class TestWorkerFaults:
    @pytest.mark.parametrize("exc", [KeyboardInterrupt(), SystemExit(3)])
    def test_worker_killing_fault_fails_job_and_worker_survives(self, exc):
        with live_service(workers=1, durable=False) as (client, service):
            with faulty_api_run() as plan:
                plan.fail_with(exc)
                status, body = client.submit(TINY)
                assert status == 202
                summary = client.wait(body["job"]["id"])
            assert summary["state"] == "failed"
            assert summary["error"]["error"]["code"] == "worker-fault"
            assert type(exc).__name__ in summary["error"]["error"]["message"]
            # The worker thread absorbed the BaseException and lives on.
            assert all(t.is_alive() for t in service._threads)
            # The digest is re-runnable once the fault is gone: a failed
            # record never dedups, so the resubmission executes for real.
            status, body2 = client.submit(TINY)
            assert status == 202 and body2["deduped"] is False
            assert client.wait(body2["job"]["id"])["state"] == "done"

    def test_plain_exception_still_uses_execution_failed_envelope(self):
        # Driven through the unified repro.faults seam: the scheduled
        # serve.execute fault takes the same path as any real execution
        # error and lands in the execution-failed envelope.
        schedule = make_schedule(5, [
            dict(site="serve.execute", kind="error", at=1),
        ])
        with live_service(workers=1, durable=False) as (client, _):
            _faults.activate(schedule)
            try:
                _, body = client.submit(TINY)
                summary = client.wait(body["job"]["id"])
            finally:
                _faults.deactivate()
            assert summary["state"] == "failed"
            assert summary["error"]["error"]["code"] == "execution-failed"
            assert "serve.execute" in summary["error"]["error"]["message"]


# ----------------------------------------------------------------------
# admission control: bounded queue, 429 + Retry-After, draining
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_queue_full_gets_429_with_retry_after(self):
        server, service, url = start_service(
            workers=1, max_queue=2, retry_after=7.0, durable=False
        )
        client = ServeClient(url)
        try:
            with faulty_api_run() as plan:
                plan.hold()
                # One job occupies the single worker...
                _, running = client.submit(distinct(0))
                assert plan.entered.wait(timeout=10.0)
                # ...two more fill the bounded queue...
                for i in (1, 2):
                    status, _ = client.submit(distinct(i))
                    assert status == 202
                # ...and the next new request is refused, typed + hinted.
                status, headers, blob = raw_response(
                    url, "POST", "/v1/experiments",
                    json.dumps(distinct(3)).encode(),
                )
                assert status == 429
                err = json.loads(blob)["error"]
                assert err["code"] == "queue-full"
                assert err["details"]["max_queue"] == 2
                assert err["details"]["retry_after"] == 7.0
                assert headers["retry-after"] == "7"
                # Dedup onto in-flight work is NOT refused: reads and
                # coalescing keep working under overload.
                status, body = client.submit(distinct(1))
                assert (status, body["deduped"]) == (200, True)
                assert client.stats()["jobs"]["rejected_full"] == 1
                # Release the gate: everything admitted completes.
                plan.release()
                for i in (0, 1, 2):
                    job_id = ServeRequest.from_payload(distinct(i)).job_id()
                    assert client.wait(job_id)["state"] == "done"
            # Capacity freed: the refused request is admitted on retry
            # (the client-side backoff loop the bench overload mode uses).
            status, body = client.submit(distinct(3), retry_on_429=5)
            assert status == 202
            assert client.wait(body["job"]["id"])["state"] == "done"
        finally:
            teardown(server, service)

    def test_draining_refuses_new_work_but_serves_reads(self):
        with live_service(workers=1, durable=False) as (client, service):
            done_bytes = client.run(TINY)
            assert service.drain(timeout=30.0) is True
            # New work: 503 draining with a Retry-After hint.
            status, headers, blob = raw_response(
                client.base_url, "POST", "/v1/experiments",
                json.dumps(distinct(9)).encode(),
            )
            assert status == 503
            assert json.loads(blob)["error"]["code"] == "draining"
            assert "retry-after" in headers
            # Reads and dedup-to-done keep serving.
            status, body = client.submit(TINY)
            assert (status, body["deduped"]) == (200, True)
            assert client.result_bytes(body["job"]["id"]) == done_bytes
            assert client.stats()["state"] == "draining"
            assert client.stats()["jobs"]["rejected_draining"] == 1


# ----------------------------------------------------------------------
# durability: restart on the same cache dir, answer for old job ids
# ----------------------------------------------------------------------
class TestDurableRecovery:
    def test_restart_serves_done_job_byte_identically(self, tmp_path):
        cache = tmp_path / "cache"
        server1, service1, url1 = start_service(workers=1, cache_dir=cache)
        try:
            client1 = ServeClient(url1)
            first = client1.run(TINY)
            job_id = ServeRequest.from_payload(dict(TINY)).job_id()
        finally:
            teardown(server1, service1)

        server2, service2, url2 = start_service(workers=1, cache_dir=cache)
        try:
            client2 = ServeClient(url2)
            status, summary = client2.job(job_id)
            assert status == 200
            assert summary["state"] == DONE
            assert summary["recovered"] is True
            # Byte-identical result, with zero runner activity: the
            # durable table answers before the sim cache is even asked.
            assert client2.result_bytes(job_id) == first
            stats = client2.stats()
            assert stats["durable"] is True
            assert stats["jobs"]["recovered"] >= 1
            assert stats["runner"]["executed"] == 0
            assert stats["runner"]["cache_hits"] == 0
            # A duplicate submission dedups onto the recovered record.
            status, body = client2.submit(TINY)
            assert (status, body["deduped"]) == (200, True)
        finally:
            teardown(server2, service2)

    def test_restart_reruns_interrupted_jobs(self, tmp_path):
        cache = tmp_path / "cache"
        # Workers never start: the submission is persisted QUEUED and
        # the process "dies" with the job undone — the crash picture.
        server1, service1, url1 = start_service(
            start_workers=False, workers=1, cache_dir=cache
        )
        try:
            status, body = ServeClient(url1).submit(TINY)
            assert status == 202
            job_id = body["job"]["id"]
        finally:
            server1.shutdown()
            server1.server_close()

        server2, service2, url2 = start_service(workers=1, cache_dir=cache)
        try:
            client2 = ServeClient(url2)
            # Recovered and re-enqueued on start — first poll already
            # sees the job, and it runs to completion without any
            # resubmission.
            summary = client2.wait(job_id, timeout=60.0)
            assert summary["state"] == DONE
            assert summary["recovered"] is True
            served = client2.result_bytes(job_id)
            direct = api.run("fig10", records=2500, workloads=["mcf_inp"],
                             schemes=["triangel"])
            assert served == canonical_result_json(direct).encode()
        finally:
            teardown(server2, service2)

    def test_running_jobs_recover_as_queued(self, tmp_path):
        """A record persisted mid-run (state RUNNING) restarts as QUEUED."""
        cache = tmp_path / "cache"
        server1, service1, url1 = start_service(workers=1, cache_dir=cache)
        try:
            client1 = ServeClient(url1)
            with faulty_api_run() as plan:
                plan.hold()
                _, body = client1.submit(TINY)
                job_id = body["job"]["id"]
                assert plan.entered.wait(timeout=10.0)
                # The worker is inside the job: the durable record says
                # RUNNING.  Kill the whole stack without letting it end.
                server1.shutdown()
                server1.server_close()
                plan.release()  # unblock the orphaned worker thread
        finally:
            service1.stop()

        server2, service2, url2 = start_service(workers=1, cache_dir=cache)
        try:
            client2 = ServeClient(url2)
            summary = client2.wait(job_id, timeout=60.0)
            assert summary["state"] == DONE
        finally:
            teardown(server2, service2)

    def test_retention_prunes_old_terminal_jobs_across_restart(self, tmp_path):
        """--job-retention: aged-out DONE records are pruned at recovery
        (table entry and durable file both gone; the id answers 404)."""
        cache = tmp_path / "cache"
        server1, service1, url1 = start_service(workers=1, cache_dir=cache)
        try:
            client1 = ServeClient(url1)
            client1.run(TINY)
            job_id = client1.jobs()["jobs"][0]["id"]
        finally:
            teardown(server1, service1)
        store_dir = cache / "serve-jobs"
        for path in store_dir.glob("*.json"):
            rec = json.loads(path.read_text())
            rec["finished_at"] = time.time() - 3600
            path.write_text(json.dumps(rec))
        server2, service2, url2 = start_service(
            workers=1, cache_dir=cache, job_retention=60.0
        )
        try:
            client2 = ServeClient(url2)
            status, _ = client2.job(job_id)
            assert status == 404
            assert service2.table.counters()["pruned"] == 1
            assert not list(store_dir.glob("*.json"))
            assert client2.stats()["job_retention"] == 60.0
        finally:
            teardown(server2, service2)

    def test_periodic_gc_prunes_live_table(self):
        """The retention GC thread ages terminal records out of a
        running service without touching live work."""
        with live_service(
            workers=1, durable=False, job_retention=0.2
        ) as (client, service):
            client.run(TINY)
            deadline = time.monotonic() + 10.0
            while (
                service.table.counters()["done"] > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            counters = service.table.counters()
            assert counters["done"] == 0
            assert counters["pruned"] >= 1

    def test_corrupt_store_entries_never_block_boot(self, tmp_path):
        cache = tmp_path / "cache"
        jobs_dir = cache / "serve-jobs"
        jobs_dir.mkdir(parents=True)
        (jobs_dir / ("a" * 64 + ".json")).write_text("{torn write")
        (jobs_dir / ("b" * 64 + ".json")).write_text('{"digest": "b"}')
        server, service, url = start_service(workers=1, cache_dir=cache)
        try:
            client = ServeClient(url)
            assert client.health() == (200, {"status": "ok"})
            assert client.run(TINY)  # fully functional despite the debris
        finally:
            teardown(server, service)


# ----------------------------------------------------------------------
# streaming: SSE progress, heartbeats, and clients that vanish
# ----------------------------------------------------------------------
class TestStreaming:
    def test_stream_yields_progress_then_done(self):
        with live_service(workers=1) as (client, service):
            _, body = client.submit(TINY)
            job_id = body["job"]["id"]
            events = list(client.stream(job_id))
            kinds = [kind for kind, _ in events]
            assert kinds[0] == "summary"
            assert kinds[-1] == "done"
            assert "progress" in kinds
            progressed = [p for k, p in events if k == "progress"]
            assert progressed[-1]["progress"]["done"] > 0
            final = events[-1][1]
            assert final["state"] == "done"
            # The stream on an already-done job is summary -> done.
            again = list(client.stream(job_id))
            assert [k for k, _ in again] == ["summary", "done"]

    def test_stream_of_failed_job_ends_with_failed_event(self):
        with live_service(workers=1, durable=False) as (client, _):
            with faulty_api_run() as plan:
                plan.fail_with(RuntimeError("boom"))
                _, body = client.submit(TINY)
                events = list(client.stream(body["job"]["id"]))
            assert events[-1][0] == "failed"
            assert events[-1][1]["error"]["error"]["code"] == "execution-failed"

    def test_resumable_stream_replays_missed_progress(self):
        # A reconnecting client sends Last-Event-ID (the tracker version
        # of the last progress frame it saw); the server replays every
        # missed retained version before the terminal event, gaplessly
        # and in order.
        with live_service(workers=1) as (client, service):
            _, body = client.submit(TINY)
            job_id = body["job"]["id"]
            client.wait(job_id)
            record = service.table.get(job_id)
            total = record.tracker.snapshot()["version"]
            assert total >= 2
            events = list(client.stream(job_id, last_event_id=1))
            kinds = [kind for kind, _ in events]
            assert kinds[0] == "summary" and kinds[-1] == "done"
            versions = [
                p["progress"]["version"] for k, p in events if k == "progress"
            ]
            assert versions == list(range(2, total + 1))

    def test_stream_unknown_job_raises_typed_error(self):
        with live_service(workers=1) as (client, _):
            with pytest.raises(ServeError) as exc:
                list(client.stream("feedfacefeedfacefeedfacefeedface"))
            assert exc.value.status == 404
            assert exc.value.code == "unknown-job"

    def test_heartbeats_flow_while_job_is_quiet(self):
        server, service, url = start_service(workers=1, durable=False)
        server.RequestHandlerClass.sse_heartbeat = 0.05
        try:
            with faulty_api_run() as plan:
                plan.hold()
                client = ServeClient(url)
                _, body = client.submit(TINY)
                job_id = body["job"]["id"]
                assert plan.entered.wait(timeout=10.0)
                # Raw read: heartbeat comments are on the wire while the
                # job sits held (the client API swallows them).
                seen = abrupt_sse_disconnect(url, job_id,
                                             until=b": heartbeat")
                assert b": heartbeat" in seen
                plan.release()
                assert client.wait(job_id)["state"] == "done"
        finally:
            teardown(server, service)

    def test_mid_stream_disconnect_never_kills_a_worker(self):
        server, service, url = start_service(workers=2, durable=False)
        try:
            client = ServeClient(url)
            with faulty_api_run() as plan:
                plan.hold()
                _, body = client.submit(TINY)
                job_id = body["job"]["id"]
                assert plan.entered.wait(timeout=10.0)
                # Several clients vanish mid-stream while the job runs —
                # one with barely a byte read, one mid-frames.
                for min_bytes in (1, 200):
                    assert abrupt_sse_disconnect(url, job_id, min_bytes)
                plan.release()
                # The service is unharmed: workers alive, health green,
                # the job completes, and fresh streams still work.
                assert all(t.is_alive() for t in service._threads)
                assert client.health() == (200, {"status": "ok"})
                assert client.wait(job_id)["state"] == "done"
            events = list(client.stream(job_id))
            assert events[-1][0] == "done"
        finally:
            teardown(server, service)


# ----------------------------------------------------------------------
# client transport hardening
# ----------------------------------------------------------------------
class TestClientTransport:
    def test_connection_failure_raises_typed_serve_error(self):
        # Nothing listens here; the client must retry then raise typed.
        client = ServeClient("http://127.0.0.1:9", timeout=0.5,
                             retries=1, backoff=0.01)
        start = time.monotonic()
        with pytest.raises(ServeError) as exc:
            client.health()
        assert time.monotonic() - start < 5.0
        assert exc.value.code == "connection-failed"
        assert exc.value.details["attempts"] == 2
        envelope = exc.value.envelope()
        assert envelope["error"]["code"] == "connection-failed"

    def test_transport_retry_rides_out_a_reset(self, monkeypatch):
        """A connection reset on attempt 1 is retried transparently."""
        import urllib.request as _ur

        with live_service(workers=1) as (client, _):
            real_urlopen = _ur.urlopen
            calls = {"n": 0}

            def flaky_urlopen(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ConnectionResetError("peer reset mid-handshake")
                return real_urlopen(*args, **kwargs)

            monkeypatch.setattr(_ur, "urlopen", flaky_urlopen)
            flaky_client = ServeClient(client.base_url, timeout=5.0,
                                       retries=2, backoff=0.01)
            assert flaky_client.health() == (200, {"status": "ok"})
            assert calls["n"] == 2  # one reset, one success


# ----------------------------------------------------------------------
# graceful end-to-end: queued work survives a drain-based shutdown
# ----------------------------------------------------------------------
class TestDrainShutdown:
    def test_drain_finishes_queued_jobs_before_stopping(self):
        with live_service(workers=1, durable=False) as (client, service):
            with faulty_api_run() as plan:
                plan.hold()
                ids = []
                for i in range(3):
                    status, body = client.submit(distinct(i))
                    assert status == 202
                    ids.append(body["job"]["id"])
                assert plan.entered.wait(timeout=10.0)
                drained = {"value": None}

                def drain():
                    drained["value"] = service.drain(timeout=60.0)

                t = threading.Thread(target=drain)
                t.start()
                time.sleep(0.05)
                assert service.draining  # refusing, but still finishing
                plan.release()
                t.join(timeout=60.0)
            assert drained["value"] is True
            for job_id in ids:
                status, summary = client.job(job_id)
                assert (status, summary["state"]) == (200, DONE)
            counters = client.stats()["jobs"]
            assert counters[QUEUED] == 0 and counters[FAILED] == 0
