"""End-to-end resilience: failure policy, checkpoint/resume, chaos.

The contract under test (architecture invariant 14): **every failure a
partial sweep surfaces is a structured record with a content-addressed
job key — no partial result may silently drop one**, and an interrupted
or fault-ridden sweep, resumed on the same cache, converges to results
byte-identical to a fault-free run.

Four layers:

- ``api.run`` with ``on_error="skip"`` and a scheduled ``job.execute``
  fault yields a partial result carrying structured ``JobFailure``
  records (JSON round-trip, ``text()`` report, ``--json`` shape);
- dependency propagation: a failed profile job marks its dependent
  prophet job ``skipped`` with the dep's key in the record;
- corrupt CAS entries are quarantined to ``<cache>/quarantine/`` with
  their evidence bytes intact;
- the pinned acceptance path: a seeded chaos sweep through the real CLI
  (``--pool loopback:4``, worker death + injected job errors,
  ``--on-error skip``) completes with ``JobFailure`` records in the
  ``--json`` document, and ``--resume`` closes the gap byte-identically
  to a fault-free run of the same request.

Plus Hypothesis properties for :class:`repro.faults.FaultSchedule`:
JSON round-trip is exact, and the firing decision is a pure function of
``(spec, n, seed)`` — bit-identical replay is what makes chaos runs
debuggable.
"""

import json

import pytest

from repro import api
from repro import cli
from repro.faults import (
    FaultInjected,
    FaultSchedule,
    FaultSpec,
    make_schedule,
)
from repro.runner import (
    ExecutionPolicy,
    JobFailure,
    ResultCache,
    Runner,
    SimJob,
    TraceRef,
)
from repro.sim.config import default_config
from repro.sim.results import SimResult
from repro.workloads.spec import make_spec_trace


def skip_policy(faults=None, **kwargs) -> ExecutionPolicy:
    return ExecutionPolicy(
        pool="inline", no_cache=True, on_error="skip", faults=faults,
        **kwargs,
    )


# ----------------------------------------------------------------------
# api.run under a tolerant policy: partial results, structured failures
# ----------------------------------------------------------------------
class TestSkipPolicy:
    def test_partial_result_carries_structured_failures(self):
        schedule = make_schedule(21, [
            dict(site="job.execute", kind="error", at=1),
        ])
        runner = skip_policy(faults=schedule).make_runner()
        try:
            result = api.run(
                "fig10", records=2000, workloads=["mcf_inp"],
                schemes=["triangel"], runner=runner,
            )
        finally:
            runner.close()
        assert result.failures, "the injected failure must be surfaced"
        failure = result.failures[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind in ("error", "skipped")
        assert len(failure.key) == 64  # a real content-addressed job key
        assert "FaultInjected" in failure.error or "SKIPPED" in failure.error
        # The report text names every failure; JSON round-trips them.
        assert "job failure(s)" in result.text()
        blob = json.loads(json.dumps(result.to_dict()))
        restored = api.ExperimentResult.from_dict(blob)
        assert [f.to_dict() for f in restored.failures] == \
            [f.to_dict() for f in result.failures]

    def test_fault_free_result_serializes_without_failures_key(self):
        runner = skip_policy().make_runner()
        try:
            result = api.run(
                "fig10", records=2000, workloads=["mcf_inp"],
                schemes=["triangel"], runner=runner,
            )
        finally:
            runner.close()
        assert result.failures == []
        # Omitted when empty: a resumed gap-closing run serializes
        # byte-identically to a never-faulted one.
        assert "failures" not in result.to_dict()

    def test_raise_policy_is_unchanged(self):
        schedule = make_schedule(21, [
            dict(site="job.execute", kind="error", at=1),
        ])
        runner = ExecutionPolicy(
            pool="inline", no_cache=True, faults=schedule
        ).make_runner()
        try:
            with pytest.raises(FaultInjected):
                api.run(
                    "fig10", records=2000, workloads=["mcf_inp"],
                    schemes=["triangel"], runner=runner,
                )
        finally:
            runner.close()

    def test_retry_policy_retries_then_skips(self):
        # The fault fires only on the site's first invocation; retry:1
        # re-runs the failed job and the second attempt succeeds.
        schedule = make_schedule(21, [
            dict(site="job.execute", kind="error", at=1),
        ])
        config = default_config()
        job = SimJob(
            "baseline",
            TraceRef.from_trace(make_spec_trace("mcf", None, 2000)),
            config,
        )
        runner = Runner(
            use_cache=False, on_error="retry:1", faults=schedule
        )
        [payload] = runner.run([job])
        assert payload is not None
        assert runner.failure_log == []
        # every=1 == always: the retry budget exhausts, the job skips.
        always = make_schedule(21, [dict(site="job.execute", kind="error")])
        runner2 = Runner(use_cache=False, on_error="retry:1", faults=always)
        [payload2] = runner2.run([job])
        assert payload2 is None
        assert len(runner2.failure_log) == 1
        assert runner2.failure_log[0].attempts >= 2


# ----------------------------------------------------------------------
# dependency propagation: a dead dep skips its dependents, structurally
# ----------------------------------------------------------------------
class TestDepPropagation:
    def test_failed_dep_marks_dependent_skipped(self):
        config = default_config()
        ref = TraceRef.from_trace(make_spec_trace("mcf", None, 2000))
        profile_job = SimJob("profile", ref, config)
        prophet_job = SimJob(
            "prophet", ref, config, deps={"profile": profile_job}
        )
        schedule = make_schedule(21, [
            dict(site="job.execute", kind="error", at=1),
        ])
        runner = Runner(use_cache=False, on_error="skip", faults=schedule)
        got = runner.run([prophet_job])
        assert got == [None]
        by_key = {f.key: f for f in runner.failure_log}
        assert by_key[profile_job.cache_key].kind == "error"
        dependent = by_key[prophet_job.cache_key]
        assert dependent.kind == "skipped"
        assert "SKIPPED(dep)" in dependent.error
        assert profile_job.cache_key[:12] in dependent.error


# ----------------------------------------------------------------------
# CAS quarantine: corrupt entries move aside, evidence intact
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_corrupt_entry_is_quarantined_with_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = SimResult("w", "s", 1, 123.0, 0, 0, 0, 0, 0)
        cache.put("k", payload)
        original = (tmp_path / "k.json").read_bytes()
        # A scheduled corrupt read drives the real verification path.
        import repro.faults as faults

        with faults.scope(make_schedule(9, [
            dict(site="cache.read", kind="corrupt", at=1),
        ])):
            assert cache.get("k") is None
        assert cache.quarantined == 1
        quarantined = tmp_path / "quarantine" / "k.json"
        assert quarantined.read_bytes() == original  # evidence preserved
        assert cache.get("k") is None  # entry is gone from the live cache
        cache.put("k", payload)  # a re-simulation heals it
        assert cache.get("k") == payload


# ----------------------------------------------------------------------
# the pinned acceptance path: CLI chaos sweep + --resume byte-identity
# ----------------------------------------------------------------------
class TestChaosResume:
    BASE = [
        "--records", "1500", "--workloads", "mcf_inp",
        "--schemes", "triangel", "--json",
    ]

    @classmethod
    def _scrub(cls, node):
        # Drop wall-clock noise wherever it lives ("elapsed",
        # "*_seconds"); everything else must match exactly.
        if isinstance(node, dict):
            return {
                k: cls._scrub(v) for k, v in node.items()
                if k != "elapsed" and not k.endswith("_seconds")
            }
        if isinstance(node, list):
            return [cls._scrub(v) for v in node]
        return node

    @classmethod
    def _normalized(cls, path):
        doc = cls._scrub(json.loads(path.read_text()))
        doc["execution"] = None
        return doc

    def test_chaos_sweep_resumes_byte_identical(self, tmp_path, capsys):
        schedule = json.dumps({"seed": 42, "faults": [
            {"site": "pool.worker", "kind": "die", "at": 1,
             "host": "loopback/0"},
            {"site": "job.execute", "kind": "error", "at": 5},
        ]})
        chaos_out = tmp_path / "chaos-out"
        clean_out = tmp_path / "clean-out"
        # 1. The seeded chaos sweep completes under on_error=skip:
        #    worker 0 dies on its first job, each surviving worker
        #    injects an error on its 5th — no PoolError aborts the run.
        rc = cli.main([
            "all", *self.BASE,
            "--pool", "loopback:4", "--jobs", "4",
            "--on-error", "skip", "--faults", schedule,
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(chaos_out),
        ])
        assert rc in (0, 1)  # 1 = whole experiments checkpointed failed
        capsys.readouterr()
        manifest_files = list((tmp_path / "cache" / "sweeps").glob("*.json"))
        assert len(manifest_files) == 1
        manifest = json.loads(manifest_files[0].read_text())
        assert manifest["experiments"], "the sweep must checkpoint"
        # Structured JobFailure records surface in the --json documents
        # of every experiment that lost jobs.
        failures = [
            f
            for entry in manifest["experiments"].values()
            for f in entry.get("failures", [])
        ]
        if failures:  # worker-count scheduling decides how many fire
            assert all(
                len(f["key"]) == 64 and f["kind"] in ("error", "skipped")
                for f in failures
            )
        # 2. --resume on the same cache, fault-free, closes the gap.
        rc2 = cli.main([
            "all", *self.BASE,
            "--on-error", "skip",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(chaos_out), "--resume",
        ])
        assert rc2 == 0
        capsys.readouterr()
        # 3. A fault-free reference run of the same request.
        rc3 = cli.main([
            "all", *self.BASE,
            "--cache-dir", str(tmp_path / "clean-cache"),
            "--out", str(clean_out),
        ])
        assert rc3 == 0
        capsys.readouterr()
        clean_docs = sorted(clean_out.glob("*.json"))
        assert clean_docs, "the reference sweep must produce documents"
        for path in clean_docs:
            resumed = chaos_out / path.name
            assert resumed.exists(), f"resume never produced {path.name}"
            got, want = self._normalized(resumed), self._normalized(path)
            assert got == want, f"{path.name} diverged after resume"


# ----------------------------------------------------------------------
# FaultSchedule properties (Hypothesis)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_SPECS = st.builds(
    FaultSpec,
    site=st.sampled_from(
        ("engine.simulate", "job.execute", "cache.read", "cache.write",
         "serve.execute")
    ),
    kind=st.sampled_from(("error", "io-error", "corrupt", "sleep")),
    at=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
    after=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    every=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    p=st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    arg=st.one_of(st.none(), st.just(0.0)),
)

_WORKER_SPECS = st.builds(
    FaultSpec,
    site=st.just("pool.worker"),
    kind=st.sampled_from(("die", "hang", "sleep")),
    at=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    host=st.one_of(st.none(), st.sampled_from(("a/*", "b/?", "host/0"))),
    arg=st.one_of(st.none(), st.just(0.1)),
)

_SCHEDULES = st.builds(
    FaultSchedule,
    seed=st.integers(min_value=0, max_value=2**31),
    specs=st.lists(st.one_of(_SPECS, _WORKER_SPECS), max_size=5).map(tuple),
)


class TestScheduleProperties:
    @settings(max_examples=150, deadline=None)
    @given(schedule=_SCHEDULES)
    def test_json_round_trip_is_exact(self, schedule):
        assert FaultSchedule.from_json(schedule.to_json()) == schedule
        # And the wire form is stable: re-serializing the round-tripped
        # schedule reproduces the same bytes (what lets REPRO_FAULTS
        # forward one schedule coherently across a fleet).
        assert FaultSchedule.from_json(schedule.to_json()).to_json() \
            == schedule.to_json()

    @settings(max_examples=150, deadline=None)
    @given(schedule=_SCHEDULES, site=st.sampled_from(
        ("engine.simulate", "job.execute", "cache.read")
    ))
    def test_firing_is_deterministic_per_seed(self, schedule, site):
        # The firing decision is a pure function of (specs, site, n,
        # seed): an independently reconstructed schedule fires on
        # exactly the same invocations.
        clone = FaultSchedule.from_json(schedule.to_json())
        pattern = [schedule.match(site, n) is not None for n in range(1, 60)]
        assert pattern == \
            [clone.match(site, n) is not None for n in range(1, 60)]

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        p=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    )
    def test_probability_draws_never_use_global_random(self, seed, p):
        import random

        spec = FaultSpec(site="job.execute", p=p)
        state = random.getstate()
        fired = [spec.matches(n, seed) for n in range(1, 40)]
        assert random.getstate() == state  # sha256-derived, not random
        assert fired == [spec.matches(n, seed) for n in range(1, 40)]
