"""Unit tests for the DRAM-resident metadata prefetchers (STMS, Domino)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import Hierarchy
from repro.prefetchers.base import L2AccessInfo
from repro.prefetchers.offchip import (
    ENTRIES_PER_METADATA_LINE,
    DominoPrefetcher,
    HistoryBuffer,
    MetadataCache,
    MISBPrefetcher,
    STMSPrefetcher,
)
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import spec_suite


def miss(pc, line, cycle=0.0):
    return L2AccessInfo(pc=pc, line=line, cycle=cycle, l2_hit=False)


def hit(pc, line, cycle=0.0):
    return L2AccessInfo(pc=pc, line=line, cycle=cycle, l2_hit=True)


# ----------------------------------------------------------------------
# HistoryBuffer
# ----------------------------------------------------------------------
class TestHistoryBuffer:
    def test_append_returns_sequential_positions(self):
        hb = HistoryBuffer(capacity=64)
        assert [hb.append(line) for line in (10, 20, 30)] == [0, 1, 2]

    def test_segment_returns_successors(self):
        hb = HistoryBuffer(capacity=64)
        for line in (1, 2, 3, 4, 5):
            hb.append(line)
        assert hb.segment(0, 3) == [2, 3, 4]
        assert hb.segment(3, 3) == [5]

    def test_segment_out_of_range_is_empty(self):
        hb = HistoryBuffer(capacity=64)
        hb.append(1)
        assert hb.segment(5, 4) == []
        assert hb.segment(-1, 4) == []

    def test_wraparound_overwrites_oldest(self):
        hb = HistoryBuffer(capacity=ENTRIES_PER_METADATA_LINE)
        for line in range(ENTRIES_PER_METADATA_LINE):
            hb.append(line)
        pos = hb.append(99)  # overwrites position 0
        assert pos == 0
        assert hb.segment(0, 2) == [1, 2]
        assert len(hb) == ENTRIES_PER_METADATA_LINE

    def test_capacity_below_one_line_rejected(self):
        with pytest.raises(ValueError):
            HistoryBuffer(capacity=1)

    def test_lines_for_segment_single_line(self):
        # records 1..4 after pos 0 all live in metadata line 0
        assert HistoryBuffer.lines_for_segment(0, 4) == 1

    def test_lines_for_segment_straddles_boundary(self):
        # records 6..9 after pos 5 straddle the line-0/line-1 boundary
        pos = ENTRIES_PER_METADATA_LINE - 3
        assert HistoryBuffer.lines_for_segment(pos, 4) == 2

    def test_lines_for_segment_zero_length(self):
        assert HistoryBuffer.lines_for_segment(0, 0) == 0

    @given(pos=st.integers(0, 1000), length=st.integers(1, 64))
    @settings(max_examples=60)
    def test_lines_for_segment_bounds(self, pos, length):
        n = HistoryBuffer.lines_for_segment(pos, length)
        lo = (length + ENTRIES_PER_METADATA_LINE - 1) // ENTRIES_PER_METADATA_LINE
        assert lo <= n <= lo + 1


# ----------------------------------------------------------------------
# STMS
# ----------------------------------------------------------------------
class TestSTMS:
    def test_repeated_sequence_is_predicted(self):
        pf = STMSPrefetcher(degree=3)
        seq = [100, 200, 300, 400]
        for line in seq:
            assert pf.observe(miss(1, line)) == []
        reqs = pf.observe(miss(1, 100))  # second pass: index hit on 100
        assert [r.line for r in reqs] == [200, 300, 400]

    def test_hits_are_ignored(self):
        pf = STMSPrefetcher()
        assert pf.observe(hit(1, 100)) == []
        assert pf.stats.index_lookups == 0
        assert len(pf.history) == 0

    def test_trigger_pc_attribution(self):
        pf = STMSPrefetcher(degree=1)
        for line in (5, 6):
            pf.observe(miss(7, line))
        reqs = pf.observe(miss(9, 5))
        assert reqs and all(r.trigger_pc == 9 for r in reqs)

    def test_self_prefetch_filtered(self):
        pf = STMSPrefetcher(degree=2)
        for line in (1, 1):  # A followed by A: successor equals trigger
            pf.observe(miss(1, line))
        reqs = pf.observe(miss(1, 1))
        assert all(r.line != 1 for r in reqs)

    def test_every_miss_charges_index_probe(self):
        pf = STMSPrefetcher()
        for i in range(10):
            pf.observe(miss(1, i))
        assert pf.stats.index_lookups == 10
        assert pf.stats.metadata_reads >= 10  # one index probe per miss

    def test_append_writes_are_buffered(self):
        pf = STMSPrefetcher()
        for i in range(ENTRIES_PER_METADATA_LINE * 3):
            pf.observe(miss(1, i + 1000))
        # one history-line write per 8 appends, plus coalesced index updates
        assert pf.stats.metadata_writes == 3 + 3

    def test_drain_resets_pending(self):
        pf = STMSPrefetcher()
        pf.observe(miss(1, 1))
        reads, writes = pf.drain_metadata_traffic()
        assert reads >= 1
        assert pf.drain_metadata_traffic() == (0, 0)

    def test_index_hit_rate_on_repeating_stream(self):
        pf = STMSPrefetcher(degree=2)
        stream = list(range(50)) * 3
        for line in stream:
            pf.observe(miss(1, line))
        assert pf.stats.index_hit_rate > 0.6

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            STMSPrefetcher(degree=0)


# ----------------------------------------------------------------------
# Domino
# ----------------------------------------------------------------------
class TestDomino:
    def test_pair_index_disambiguates_multiple_successors(self):
        """(A,B)->C and (X,B)->D must be kept apart; STMS conflates them."""
        pf = DominoPrefetcher(degree=1)
        for line in (10, 20, 30):  # A B C
            pf.observe(miss(1, line))
        for line in (40, 20, 50):  # X B D
            pf.observe(miss(1, line))
        pf.observe(miss(1, 10))  # A again
        reqs = pf.observe(miss(1, 20))  # (A, B) -> expect C, not D
        assert [r.line for r in reqs] == [30]

    def test_stms_conflates_the_same_case(self):
        pf = STMSPrefetcher(degree=1)
        for line in (10, 20, 30, 40, 20, 50):
            pf.observe(miss(1, line))
        pf.observe(miss(1, 10))
        reqs = pf.observe(miss(1, 20))
        assert [r.line for r in reqs] == [50]  # last occurrence wins

    def test_fallback_to_address_index(self):
        """A pair never seen before still predicts via the address index."""
        pf = DominoPrefetcher(degree=1)
        for line in (1, 2, 3):
            pf.observe(miss(1, line))
        pf.observe(miss(1, 99))  # novel predecessor
        reqs = pf.observe(miss(1, 2))  # pair (99,2) unknown; addr index hits
        assert [r.line for r in reqs] == [3]

    def test_pair_miss_costs_two_reads(self):
        pf = DominoPrefetcher()
        pf.observe(miss(1, 1))
        pf.drain_metadata_traffic()
        pf.observe(miss(1, 2))  # pair probe misses, fallback probe misses
        reads, _ = pf.drain_metadata_traffic()
        assert reads == 2

    def test_first_miss_has_no_pair_probe(self):
        pf = DominoPrefetcher()
        pf.observe(miss(1, 1))
        reads, _ = pf.drain_metadata_traffic()
        assert reads == 1  # only the fallback address probe

    def test_repeated_sequence_predicted(self):
        pf = DominoPrefetcher(degree=3)
        seq = [7, 8, 9, 10]
        for _ in range(2):
            for line in seq:
                pf.observe(miss(1, line))
        pf.observe(miss(1, 7))
        reqs = pf.observe(miss(1, 8))
        assert [r.line for r in reqs][0] == 9


# ----------------------------------------------------------------------
# MISB: on-chip index cache over the off-chip store
# ----------------------------------------------------------------------
class TestMetadataCache:
    def test_miss_then_hit_within_frame(self):
        cache = MetadataCache(capacity_lines=4)
        hit, _ = cache.lookup(0)
        assert not hit
        cache.install(0, 42)
        hit, value = cache.lookup(0)
        assert hit and value == 42
        # Same frame: dense indices 0..7 share a metadata line.
        hit, value = cache.lookup(1)
        assert hit and value is None

    def test_lru_eviction_at_capacity(self):
        cache = MetadataCache(capacity_lines=2)
        for frame in range(3):
            cache.install(frame * ENTRIES_PER_METADATA_LINE, frame)
        hit, _ = cache.lookup(0)  # frame 0 was evicted
        assert not hit

    def test_hit_rate(self):
        cache = MetadataCache(capacity_lines=2)
        cache.lookup(0)
        cache.install(0, 1)
        cache.lookup(0)
        assert cache.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MetadataCache(capacity_lines=0)


class TestMISB:
    def test_repeated_sequence_is_predicted(self):
        pf = MISBPrefetcher(degree=3)
        seq = [100, 200, 300, 400]
        for line in seq:
            assert pf.observe(miss(1, line)) == []
        reqs = pf.observe(miss(1, 100))
        assert [r.line for r in reqs] == [200, 300, 400]

    def test_cached_index_probes_are_free(self):
        """Repeated probes to cached index frames charge no DRAM reads."""
        pf = MISBPrefetcher(degree=1, cache_lines=64)
        pf.observe(miss(1, 5))
        pf.drain_metadata_traffic()
        # Second access to the same line: its index frame is now cached;
        # no prediction targets exist, so no segment fetch either.
        pf.observe(miss(1, 5))
        reads, _ = pf.drain_metadata_traffic()
        # One read at most (history segment after the index hit), never
        # the index-frame fetch STMS would pay.
        assert pf.cache.hits >= 1

    def test_less_traffic_than_stms_same_stream(self):
        stream = list(range(200)) * 3
        stms, misb = STMSPrefetcher(degree=2), MISBPrefetcher(degree=2)
        for line in stream:
            stms.observe(miss(1, line))
            misb.observe(miss(1, line))
        assert misb.stats.metadata_reads < stms.stats.metadata_reads

    def test_tiny_cache_approaches_stms_traffic(self):
        """With a one-line index cache, most probes go to DRAM again."""
        stream = list(range(400)) * 2
        stms = STMSPrefetcher(degree=1)
        tiny = MISBPrefetcher(degree=1, cache_lines=1)
        big = MISBPrefetcher(degree=1, cache_lines=4096)
        for line in stream:
            stms.observe(miss(1, line))
            tiny.observe(miss(1, line))
            big.observe(miss(1, line))
        assert big.stats.metadata_reads < tiny.stats.metadata_reads
        assert tiny.stats.metadata_reads <= stms.stats.metadata_reads

    def test_hits_ignored(self):
        pf = MISBPrefetcher()
        assert pf.observe(hit(1, 9)) == []
        assert pf.stats.index_lookups == 0


# ----------------------------------------------------------------------
# Hierarchy integration: metadata traffic reaches the DRAM model
# ----------------------------------------------------------------------
class TestHierarchyIntegration:
    def _run(self, pf_cls, n=24_000):
        trace = spec_suite(n)[2]  # mcf: dense temporal patterns
        config = default_config()
        pf = pf_cls(degree=4)
        result = run_simulation(trace, config, pf, pf.name, warmup_frac=0.0)
        return pf, result

    def test_metadata_traffic_counted_in_dram(self):
        config = default_config()
        pf = STMSPrefetcher()
        h = Hierarchy(config, pf)
        for i in range(200):
            h.demand_access(1, 10_000 + i * 7, float(i * 40))
        assert h.dram.stats.metadata_reads > 0
        assert h.dram.stats.metadata_reads <= h.dram.stats.reads
        assert h.dram.stats.metadata_traffic <= h.dram.stats.total_traffic

    def test_onchip_prefetcher_has_no_metadata_traffic(self):
        from repro.prefetchers.triangel import TriangelPrefetcher

        config = default_config()
        h = Hierarchy(config, TriangelPrefetcher(config))
        for i in range(200):
            h.demand_access(1, 10_000 + i * 7, float(i * 40))
        assert h.dram.stats.metadata_reads == 0
        assert h.dram.stats.metadata_writes == 0

    def test_stms_produces_useful_prefetches_on_temporal_workload(self):
        pf, result = self._run(STMSPrefetcher)
        assert result.pf_issued > 0
        assert result.pf_useful > 0

    def test_offchip_traffic_exceeds_onchip(self):
        """The paper's motivating comparison, at unit-test scale."""
        from repro.prefetchers.triangel import TriangelPrefetcher

        trace = spec_suite(24_000)[2]
        config = default_config()
        off = run_simulation(trace, config, STMSPrefetcher(degree=4), "stms",
                             warmup_frac=0.0)
        on = run_simulation(trace, config, TriangelPrefetcher(config),
                            "triangel", warmup_frac=0.0)
        assert off.dram_traffic > on.dram_traffic

    def test_domino_runs_end_to_end(self):
        pf, result = self._run(DominoPrefetcher, n=20_000)
        assert result.instructions > 0
        assert pf.stats.metadata_reads > 0
