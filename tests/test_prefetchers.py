"""Unit tests for the baseline prefetchers (stride, IPCP, Triage,
Triangel, RPG2)."""

import pytest

from repro.prefetchers.base import L2AccessInfo
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.rpg2 import (
    RPG2Kernel,
    RPG2Prefetcher,
    binary_search_distance,
    dominant_stride,
    identify_kernels,
)
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.triage import TriagePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config


def access(pc, line, hit=False):
    return L2AccessInfo(pc=pc, line=line, cycle=0.0, l2_hit=hit)


class TestStride:
    def test_locks_onto_constant_stride(self):
        pf = StridePrefetcher(degree=4)
        out = []
        for i in range(6):
            out = pf.observe(1, 100 + 3 * i)
        assert out == [100 + 3 * 5 + 3 * (k + 1) for k in range(4)]

    def test_no_prefetch_without_confidence(self):
        pf = StridePrefetcher()
        assert pf.observe(1, 100) == []
        assert pf.observe(1, 103) == []  # stride learned, conf not yet

    def test_irregular_stream_stays_quiet(self):
        pf = StridePrefetcher()
        fired = []
        for line in [10, 500, 37, 9000, 123, 4567, 88, 31415]:
            fired += pf.observe(1, line)
        assert fired == []

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestIPCP:
    def test_constant_stride_class(self):
        pf = IPCPPrefetcher(degree=2)
        out = []
        for i in range(6):
            out = pf.observe(1, 100 + 5 * i)
        assert out and out[0] == 100 + 25 + 5

    def test_complex_delta_pattern(self):
        pf = IPCPPrefetcher()
        # Alternating +3/+7 deltas: CS fails, CPLX learns the pair.
        line = 1000
        fired = []
        for i in range(64):
            fired = pf.observe(2, line)
            line += 3 if i % 2 == 0 else 7
        assert fired  # CPLX predicted the next delta

    def test_stream_class_detects_dense_region(self):
        pf = IPCPPrefetcher(degree=2)
        fired = []
        for i in range(30):
            # Dense forward sweep within one region, with a PC that changes
            # every access so neither CS nor CPLX can track it.
            fired += pf.observe(100 + i, 5120 + i)
        assert fired


class TestTriage:
    def test_learns_pairs_and_prefetches(self):
        cfg = default_config()
        pf = TriagePrefetcher(cfg, degree=1, resize_enabled=False)
        pf.observe(access(1, 10))
        pf.observe(access(1, 20))  # trains 10 -> 20
        reqs = pf.observe(access(1, 10))
        assert [r.line for r in reqs] == [20]

    def test_degree_walks_chain(self):
        cfg = default_config()
        pf = TriagePrefetcher(cfg, degree=3, resize_enabled=False)
        for line in [1, 2, 3, 4]:
            pf.observe(access(7, line))
        reqs = pf.observe(access(7, 1))
        assert [r.line for r in reqs] == [2, 3, 4]

    def test_no_insertion_policy(self):
        """Triage trains on every pair — even obviously useless ones."""
        cfg = default_config()
        pf = TriagePrefetcher(cfg, degree=1, resize_enabled=False)
        inserted_before = pf.table.stats.insertions
        for line in range(100, 160):
            pf.observe(access(9, line * 977))
        assert pf.table.stats.insertions >= inserted_before + 50

    def test_bloom_resizing_grows_with_distinct_keys(self):
        cfg = default_config()
        pf = TriagePrefetcher(cfg, degree=1, initial_ways=1)
        for line in range(60_000):
            pf.observe(access(3, line * 13))
        ways = pf.desired_metadata_ways(1)
        assert ways is not None and ways > 1

    def test_insert_tracking_optional(self):
        cfg = default_config()
        on = TriagePrefetcher(cfg, track_inserts=True)
        off = TriagePrefetcher(cfg, track_inserts=False)
        for pf in (on, off):
            pf.observe(access(1, 10))
            pf.observe(access(1, 20))
        assert on.insert_key_counts() == {1: 1}
        assert off.insert_key_counts() == {}


class TestTriangel:
    def test_pattern_conf_rises_on_correct_predictions(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, dueller_enabled=False)
        for _ in range(8):
            for line in [1, 2, 3, 4]:
                pf.observe(access(5, line))
        entry = pf._trainer_entry(5)
        assert entry.pattern_conf > 8

    def test_pattern_conf_collapses_on_mispredicting_bursts(self):
        """The Fig. 1 failure mode: reshuffled sequences crash the conf."""
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, dueller_enabled=False)
        chain = list(range(100, 132))
        for _ in range(4):  # learn the stable order
            for line in chain:
                pf.observe(access(5, line))
        stable_conf = pf._trainer_entry(5).pattern_conf
        import random as _r
        rng = _r.Random(0)
        for _ in range(6):  # reshuffled walks: stale metadata mispredicts
            rng.shuffle(chain)
            for line in chain:
                pf.observe(access(5, line))
        assert pf._trainer_entry(5).pattern_conf < min(stable_conf, 8)

    def test_blocked_pc_stops_prefetching(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, dueller_enabled=False)
        entry = pf._trainer_entry(9)
        entry.pattern_conf = 0
        reqs = pf.observe(access(9, 1))
        assert reqs == []

    def test_sampled_insertions_allow_recovery(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, dueller_enabled=False)
        entry = pf._trainer_entry(9)
        entry.pattern_conf = 0
        allowed = sum(pf.runtime_allow(entry) for _ in range(64))
        assert allowed == 2  # one in SAMPLED_INSERTION_PERIOD

    def test_filter_disabled_allows_everything(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, insertion_filter_enabled=False)
        entry = pf._trainer_entry(9)
        entry.pattern_conf = 0
        assert pf.runtime_allow(entry)

    def test_dueller_shrinks_on_useless_window(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, initial_ways=4)
        pf._window_issued = 1000
        pf._window_useful = 10
        assert pf.desired_metadata_ways(4) == 3

    def test_dueller_grows_on_useful_full_table(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, initial_ways=1)
        # Fill the table to high occupancy.
        for i in range(pf.table.capacity * 2):
            pf.table.insert(i, i + 1)
        pf._window_issued = 1000
        pf._window_useful = 800
        assert pf.desired_metadata_ways(1) == 2


class TestRPG2:
    def test_dominant_stride_detects_stride(self):
        assert dominant_stride(list(range(0, 100, 3))) == 3

    def test_dominant_stride_rejects_pointer_chase(self):
        import random as _r
        lines = list(range(0, 2000, 10))
        _r.Random(5).shuffle(lines)  # scattered deltas, no dominant stride
        assert dominant_stride(lines) is None

    def test_identify_kernels_miss_share_threshold(self):
        pcs = [1] * 90 + [2] * 10
        lines = list(range(90)) + [i * 971 for i in range(10)]
        kernels = identify_kernels(pcs, lines, {1: 95, 2: 5})
        assert [k.pc for k in kernels] == [1]

    def test_identify_kernels_requires_stride(self):
        pcs = [1] * 100
        lines = [(i * 48271) % 99991 for i in range(100)]
        assert identify_kernels(pcs, lines, {1: 100}) == []

    def test_prefetcher_issues_at_distance(self):
        pf = RPG2Prefetcher([RPG2Kernel(pc=1, stride=2, distance=8)])
        reqs = pf.observe(access(1, 100))
        assert [r.line for r in reqs] == [116]
        assert pf.observe(access(2, 100)) == []

    def test_with_distance_copies(self):
        pf = RPG2Prefetcher([RPG2Kernel(1, 2, 8)])
        pf2 = pf.with_distance(4)
        assert pf2.kernels[1].distance == 4
        assert pf.kernels[1].distance == 8

    def test_binary_search_finds_peak(self):
        best, value = binary_search_distance(lambda d: -abs(d - 23), 1, 64)
        assert best == 23
        assert value == 0

    def test_binary_search_monotone(self):
        best, _ = binary_search_distance(lambda d: float(d), 1, 64)
        assert best == 64
