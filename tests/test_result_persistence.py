"""Tests for SimResult / SuiteResults JSON persistence."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import SuiteResults, evaluate_suite, make_triangel
from repro.sim.results import SimResult
from repro.workloads.spec import make_spec_trace


def sample_result(label="w", scheme="s", **overrides):
    base = dict(
        label=label,
        scheme=scheme,
        instructions=1000,
        cycles=2500.0,
        l2_demand_misses=40,
        dram_reads=30,
        dram_writes=10,
        pf_issued=20,
        pf_useful=12,
        issued_by_pc={0x400: 20},
        useful_by_pc={0x400: 12},
        miss_by_pc={0x400: 40},
        dram_metadata_traffic=3,
    )
    base.update(overrides)
    return SimResult(**base)


class TestSimResultRoundTrip:
    def test_round_trip_preserves_fields(self):
        r = sample_result()
        r2 = SimResult.from_dict(r.to_dict())
        assert r2 == r

    def test_dict_is_json_compatible(self):
        r = sample_result()
        text = json.dumps(r.to_dict())
        r2 = SimResult.from_dict(json.loads(text))
        assert r2.issued_by_pc == {0x400: 20}
        assert r2.ipc == r.ipc

    def test_unknown_keys_ignored(self):
        d = sample_result().to_dict()
        d["future_field"] = 123
        assert SimResult.from_dict(d) == sample_result()

    def test_metrics_survive(self):
        base = sample_result(scheme="baseline")
        r = sample_result(cycles=2000.0, l2_demand_misses=20)
        r2 = SimResult.from_dict(r.to_dict())
        b2 = SimResult.from_dict(base.to_dict())
        assert r2.speedup_over(b2) == r.speedup_over(base)
        assert r2.coverage_over(b2) == r.coverage_over(base)

    @given(
        pcs=st.dictionaries(
            st.integers(0, 1 << 40), st.integers(0, 1 << 20), max_size=20
        )
    )
    @settings(max_examples=30)
    def test_pc_maps_round_trip(self, pcs):
        r = sample_result(issued_by_pc=dict(pcs), useful_by_pc={}, miss_by_pc={})
        r2 = SimResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert r2.issued_by_pc == pcs


class TestSuiteResultsRoundTrip:
    @pytest.fixture(scope="class")
    def results(self):
        traces = [make_spec_trace("mcf", "inp", 5000)]
        return evaluate_suite(traces, schemes={"triangel": make_triangel})

    def test_save_load(self, results, tmp_path):
        path = tmp_path / "run.json"
        results.save(path)
        loaded = SuiteResults.load(path)
        assert loaded.schemes == results.schemes
        assert loaded.labels == results.labels

    def test_metrics_identical_after_reload(self, results, tmp_path):
        path = tmp_path / "run.json"
        results.save(path)
        loaded = SuiteResults.load(path)
        for label in results.labels:
            assert loaded.speedup(label, "triangel") == pytest.approx(
                results.speedup(label, "triangel")
            )
            assert loaded.traffic(label, "triangel") == pytest.approx(
                results.traffic(label, "triangel")
            )

    def test_table_renders_from_reload(self, results, tmp_path):
        path = tmp_path / "run.json"
        results.save(path)
        loaded = SuiteResults.load(path)
        assert loaded.table("speedup") == results.table("speedup")
