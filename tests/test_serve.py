"""Tests for the serve subsystem: endpoints, dedup, parity, envelopes.

The server under test is the real HTTP stack (``ThreadingHTTPServer`` on
an ephemeral loopback port) with the real worker pool — requests travel
the same wire path production traffic would.
"""

import json
import threading

import pytest

import repro.api as api
from repro.serve import (
    ServeClient,
    ServeError,
    ServeRequest,
    canonical_result_json,
    make_server,
)

#: A tiny but real simulation request (two SimJobs: baseline + triangel).
TINY = {
    "experiment": "fig10",
    "records": 2500,
    "workloads": ["mcf_inp"],
    "schemes": ["triangel"],
}


def start_server(**kwargs):
    server, service = make_server(port=0, **kwargs)
    service.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, service, url


@pytest.fixture()
def live():
    """A running service: (client, service); torn down afterwards."""
    server, service, url = start_server(workers=2)
    try:
        yield ServeClient(url), service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


# ----------------------------------------------------------------------
# wire schema / digest
# ----------------------------------------------------------------------
class TestServeRequest:
    def test_digest_is_deterministic_and_content_addressed(self):
        a = ServeRequest.from_payload(dict(TINY))
        b = ServeRequest.from_payload(dict(TINY))
        assert a.digest() == b.digest()
        assert a.job_id() == b.job_id() == a.digest()[:32]

    def test_digest_ignores_override_key_order(self):
        base = {"experiment": "fig10", "records": 2500}
        x = ServeRequest.from_payload(
            {**base, "overrides": {"l3.size_kb": 4096, "l2.size_kb": 512}}
        )
        y = ServeRequest.from_payload(
            {**base, "overrides": {"l2.size_kb": 512, "l3.size_kb": 4096}}
        )
        assert x.digest() == y.digest()

    def test_digest_distinguishes_every_request_knob(self):
        digests = {
            ServeRequest.from_payload(p).digest()
            for p in (
                TINY,
                {**TINY, "records": 2600},
                {**TINY, "workloads": ["omnetpp_inp"]},
                {**TINY, "schemes": ["prophet"]},
                {**TINY, "overrides": {"l3.size_kb": 4096}},
                {"experiment": "fig11", "records": 2500,
                 "workloads": ["mcf_inp"], "schemes": ["triangel"]},
            )
        }
        assert len(digests) == 6

    def test_defaults_distinct_from_explicit_selection(self):
        # The result JSON echoes the request shape (None vs a list), so
        # the digests must differ even when the labels resolve equally.
        from repro.experiments import get_experiment

        implicit = ServeRequest.from_payload(
            {"experiment": "fig10", "records": 2500}
        )
        explicit = ServeRequest.from_payload(
            {"experiment": "fig10", "records": 2500,
             "workloads": list(get_experiment("fig10").workloads)}
        )
        assert implicit.workloads is None
        assert implicit.digest() != explicit.digest()

    @pytest.mark.parametrize("payload,code", [
        ("not a dict", "invalid-request"),
        ({}, "invalid-request"),
        ({"experiment": "nope"}, "unknown-experiment"),
        ({"experiment": "fig10", "records": 0}, "invalid-request"),
        ({"experiment": "fig10", "records": True}, "invalid-request"),
        ({"experiment": "storage", "records": 500}, "invalid-request"),
        ({"experiment": "fig10", "workloads": []}, "invalid-request"),
        ({"experiment": "fig10", "workloads": ["bogus"]}, "unknown-workload"),
        ({"experiment": "fig10", "schemes": ["bogus"]}, "unknown-scheme"),
        ({"experiment": "fig10", "overrides": {"bogus.path": 1}},
         "invalid-override"),
        ({"experiment": "fig10", "experment": 1}, "unexpected-field"),
    ])
    def test_validation_rejects(self, payload, code):
        with pytest.raises(ServeError) as exc:
            ServeRequest.from_payload(payload)
        assert exc.value.status == 400
        assert exc.value.code == code
        assert exc.value.envelope()["error"]["code"] == code


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, live):
        client, _ = live
        assert client.health() == (200, {"status": "ok"})

    def test_round_trip_and_parity_with_direct_api_run(self, live):
        client, service = live
        status, body = client.submit(TINY)
        assert status == 202 and body["deduped"] is False
        job_id = body["job"]["id"]
        # Deterministic id: derived from the request digest, nothing else.
        assert job_id == ServeRequest.from_payload(dict(TINY)).job_id()
        summary = client.wait(job_id)
        assert summary["state"] == "done"
        assert summary["progress"]["done"] == summary["progress"]["total"] > 0
        assert summary["elapsed_seconds"] is not None
        served = client.result_bytes(job_id)
        direct = api.run("fig10", records=2500, workloads=["mcf_inp"],
                         schemes=["triangel"])
        assert served == canonical_result_json(direct).encode()
        # The served document round-trips through the library type.
        again = api.ExperimentResult.from_json(served.decode())
        assert again.name == "fig10"

    def test_jobs_listing_and_stats(self, live):
        client, _ = live
        client.run(TINY)
        listing = client.jobs()["jobs"]
        assert len(listing) == 1 and listing[0]["state"] == "done"
        stats = client.stats()
        assert stats["jobs"]["completed"] == 1
        assert stats["runner"]["executed"] >= 1
        assert stats["uptime_seconds"] >= 0
        assert stats["workers"] == 2

    def test_error_envelopes_over_http(self, live):
        client, _ = live
        status, body = client.submit({"experiment": "nope"})
        assert status == 400
        assert body["error"]["code"] == "unknown-experiment"
        status, body = client.job("feedfacefeedfacefeedfacefeedface")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"
        status, blob = client._request("GET", "/v1/nothing-here")
        assert status == 404
        assert json.loads(blob)["error"]["code"] == "not-found"
        status, blob = client._request("POST", "/v1/experiments")
        assert status == 400  # no body
        # Invalid JSON body.
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            client.base_url + "/v1/experiments",
            data=b"{nope", method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                status, blob = resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            status, blob = exc.code, exc.read()
        assert status == 400
        assert json.loads(blob)["error"]["code"] == "invalid-json"

    def test_result_before_completion_is_409(self):
        # Workers never started: the job stays queued.
        server, service = make_server(port=0, workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            client = ServeClient(url)
            _, body = client.submit(TINY)
            job_id = body["job"]["id"]
            status, blob = client._request("GET", f"/v1/jobs/{job_id}/result")
            assert status == 409
            assert json.loads(blob)["error"]["code"] == "job-not-finished"
        finally:
            server.shutdown()
            server.server_close()

    def test_failed_jobs_report_500_and_are_resubmittable(
        self, live, monkeypatch
    ):
        client, service = live
        boom = RuntimeError("engine exploded")

        def exploding_run(*args, **kwargs):
            raise boom

        monkeypatch.setattr(api, "run", exploding_run)
        _, body = client.submit(TINY)
        summary = client.wait(body["job"]["id"])
        assert summary["state"] == "failed"
        assert summary["error"]["error"]["code"] == "execution-failed"
        assert "engine exploded" in summary["error"]["error"]["message"]
        status, blob = client._request(
            "GET", f"/v1/jobs/{body['job']['id']}/result"
        )
        assert status == 500
        # Failures are not cached: the same digest re-executes once the
        # fault is gone.
        monkeypatch.undo()
        status, body2 = client.submit(TINY)
        assert status == 202 and body2["deduped"] is False
        assert client.wait(body2["job"]["id"])["state"] == "done"


# ----------------------------------------------------------------------
# dedup semantics (the satellite's required coverage)
# ----------------------------------------------------------------------
class TestDedup:
    def test_concurrent_identical_posts_one_job_identical_bytes(self):
        """Two identical concurrent POSTs -> one underlying job, two
        byte-identical results; a third afterwards never re-runs."""
        # Workers deliberately not started yet: both submissions are
        # guaranteed to overlap in-flight, no timing games.
        server, service = make_server(port=0, workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            client = ServeClient(url)
            responses = []
            lock = threading.Lock()

            def post() -> None:
                resp = client.submit(TINY)
                with lock:
                    responses.append(resp)

            posters = [threading.Thread(target=post) for _ in range(2)]
            for t in posters:
                t.start()
            for t in posters:
                t.join(timeout=30)

            statuses = sorted(status for status, _ in responses)
            assert statuses == [200, 202]  # exactly one created the job
            ids = {body["job"]["id"] for _, body in responses}
            assert len(ids) == 1  # one underlying job
            dedup_flags = sorted(body["deduped"] for _, body in responses)
            assert dedup_flags == [False, True]

            # Only now let the worker pool drain the queue.
            service.start()
            job_id = ids.pop()
            summary = client.wait(job_id)
            assert summary["state"] == "done"
            assert summary["dedup_hits"] == 1
            first = client.result_bytes(job_id)
            second = client.result_bytes(job_id)
            assert first == second  # byte-identical documents

            executed_before = client.stats()["runner"]["executed"]
            status, body = client.submit(TINY)
            assert status == 200 and body["deduped"] is True
            assert body["job"]["state"] == "done"  # served from the table
            third = client.result_bytes(job_id)
            assert third == first
            assert client.stats()["runner"]["executed"] == executed_before
            counters = client.stats()["jobs"]
            assert counters["distinct"] == 1
            assert counters["dedup_inflight"] == 1
            assert counters["dedup_done"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_distinct_requests_do_not_dedup(self, live):
        client, _ = live
        _, a = client.submit(TINY)
        _, b = client.submit({**TINY, "records": 2600})
        assert a["job"]["id"] != b["job"]["id"]
        assert not a["deduped"] and not b["deduped"]
        for body in (a, b):
            client.wait(body["job"]["id"])
        assert client.stats()["jobs"]["distinct"] == 2

    def test_disk_cache_absorbs_across_service_instances(self, tmp_path):
        """A restarted service re-runs the job, but the shared
        .repro-cache absorbs every simulation underneath.

        Durability is off here on purpose: with the durable job table
        (tests/test_serve_faults.py) the restarted service would serve
        the stored result without ever touching the runner — this test
        pins the *sim-cache* absorption layer underneath it.
        """
        cache_dir = tmp_path / "cache"
        server1, service1, url1 = start_server(workers=1,
                                               cache_dir=cache_dir,
                                               durable=False)
        try:
            first = ServeClient(url1).run(TINY)
            executed_first = service1.runner.stats.executed
            assert executed_first >= 1
        finally:
            server1.shutdown()
            server1.server_close()
            service1.stop()

        server2, service2, url2 = start_server(workers=1,
                                               cache_dir=cache_dir,
                                               durable=False)
        try:
            second = ServeClient(url2).run(TINY)
            assert second == first  # deterministic across restarts
            assert service2.runner.stats.executed == 0
            assert service2.runner.stats.cache_hits == executed_first
        finally:
            server2.shutdown()
            server2.server_close()
            service2.stop()
