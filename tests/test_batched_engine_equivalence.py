"""The batched engine rung must match both scalar rungs bit-for-bit.

``run_simulation_batched`` classifies record batches with a vectorized
pre-pass and retires whole L1-hit runs in closed form; everything it
cannot prove safe runs through the same fused scalar kernel as
``run_simulation``.  These tests pin the whole ``SimResult`` — cycles
(IEEE-754 accumulation order included), per-PC maps, prefetch stats,
metadata counters — against both the flat loop and the seed-era
reference loop, on representative personas and on adversarial cases
aimed at the batch machinery itself: resize polls landing mid-batch,
MSHR saturation (prefetch-queue backpressure), warmup boundaries that
do not align with batch edges, and degenerate batch sizes.

``batch_size`` is a throughput knob with no semantic effect: it must
never reach ``SimJob`` or its cache key, and adding the batched rung
must not bump ``ENGINE_VERSION`` (all rungs produce identical results,
so cached results stay valid).
"""

import dataclasses

import pytest

from repro import _accel
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.runner.jobs import ENGINE_VERSION, SimJob, TraceRef
from repro.sim.config import default_config
from repro.sim.engine import (
    run_simulation,
    run_simulation_batched,
    run_simulation_reference,
    simulate,
)
from repro.workloads.inputs import make_trace

requires_numpy = pytest.mark.requires_numpy


@pytest.fixture(scope="module")
def config():
    return default_config()


def assert_rungs_identical(trace, config, make_pf, scheme,
                           batch_size=None, **kwargs):
    flat = run_simulation(trace, config, make_pf(), scheme, **kwargs)
    ref = run_simulation_reference(trace, config, make_pf(), scheme, **kwargs)
    batched = run_simulation_batched(
        trace, config, make_pf(), scheme, batch_size=batch_size, **kwargs
    )
    assert dataclasses.asdict(flat) == dataclasses.asdict(ref)
    assert dataclasses.asdict(batched) == dataclasses.asdict(flat)


@requires_numpy
@pytest.mark.parametrize("label", ["mcf_inp", "omnetpp_omnetpp", "gcc_166"])
def test_baseline_identical(label, config):
    trace = make_trace(label, 20000)
    assert_rungs_identical(trace, config, lambda: None, "baseline")


@requires_numpy
def test_hot_l1_identical(config):
    # The bench workload: nearly every measure-phase record retires
    # through the vectorized path, so any closed-form error shows here.
    trace = make_trace("gen_hot_l1", 30000)
    assert_rungs_identical(trace, config, lambda: None, "baseline")


@requires_numpy
def test_triangel_identical(config):
    trace = make_trace("mcf_inp", 20000)
    assert_rungs_identical(
        trace, config, lambda: TriangelPrefetcher(config), "triangel"
    )


@requires_numpy
def test_prophet_identical(config):
    from repro.core.pipeline import OptimizedBinary

    trace = make_trace("mcf_inp", 20000)
    binary = OptimizedBinary.from_profile(trace, config)
    assert_rungs_identical(
        trace, config, lambda: binary.prefetcher(config), "prophet"
    )


@requires_numpy
def test_resize_polls_inside_batch(config):
    # resize_window far below the batch size: polls (and kernel rebinds)
    # land mid-batch, and runs must never cross them (invariant 10).
    trace = make_trace("mcf_inp", 20000)
    assert_rungs_identical(
        trace, config, lambda: TriangelPrefetcher(config), "triangel",
        resize_window=1024, warmup_frac=0.6,
    )


@requires_numpy
def test_mshr_saturation_identical(config):
    # A 2-entry L2 MSHR file keeps the prefetch queue backed up, so
    # retirement must prove the queue stays blocked across each run.
    cfg = dataclasses.replace(config, l2=dataclasses.replace(config.l2, mshrs=2))
    trace = make_trace("omnetpp_inp", 20000)
    assert_rungs_identical(trace, cfg, lambda: None, "baseline")
    assert_rungs_identical(
        trace, cfg, lambda: TriangelPrefetcher(cfg), "triangel"
    )


@requires_numpy
def test_warmup_boundary_not_batch_aligned(config):
    # warmup ends at record 6600 with 997-record batches: the
    # measurement reset lands mid-stream, never on a batch edge.
    trace = make_trace("mcf_inp", 20000)
    assert_rungs_identical(
        trace, config, lambda: None, "baseline",
        batch_size=997, warmup_frac=0.33,
    )


@requires_numpy
@pytest.mark.parametrize("batch_size", [1, 10**6])
def test_degenerate_batch_sizes(batch_size, config):
    trace = make_trace("mcf_inp", 6000)
    assert_rungs_identical(
        trace, config, lambda: None, "baseline", batch_size=batch_size
    )


@requires_numpy
def test_tlb_enabled_identical(config):
    # The same-page TLB fast path is part of the retired footprint.
    cfg = config.with_tlb()
    trace = make_trace("mcf_inp", 20000)
    assert_rungs_identical(trace, cfg, lambda: None, "baseline")


@requires_numpy
def test_l1_prefetcher_variants_identical(config):
    # ipcp cannot be replayed in closed form (classification must turn
    # the fast path off); "none" removes stride training entirely.
    trace = make_trace("mcf_inp", 12000)
    for kind in ("ipcp", "none"):
        cfg = config.with_l1_prefetcher(kind)
        assert_rungs_identical(trace, cfg, lambda: None, "baseline")


def test_simulate_dispatches_and_honors_flag(config):
    trace = make_trace("mcf_inp", 8000)
    expected = run_simulation(trace, config, None, "baseline")
    assert dataclasses.asdict(simulate(trace, config, None, "baseline")) \
        == dataclasses.asdict(expected)
    _accel.set_numpy_enabled(False)
    try:
        # Forced off: the dispatcher must take the scalar loop and still
        # produce the identical result.
        forced = simulate(trace, config, None, "baseline")
    finally:
        _accel.set_numpy_enabled(None)
    assert dataclasses.asdict(forced) == dataclasses.asdict(expected)


def test_numpy_flag_tri_state(monkeypatch):
    monkeypatch.delenv("REPRO_NUMPY", raising=False)
    auto = _accel.numpy_enabled()
    assert auto == _accel.numpy_capability().ok  # auto: on when usable
    monkeypatch.setenv("REPRO_NUMPY", "0")
    assert not _accel.numpy_enabled()
    monkeypatch.setenv("REPRO_NUMPY", "off")
    assert not _accel.numpy_enabled()
    monkeypatch.setenv("REPRO_NUMPY", "1")
    assert _accel.numpy_enabled() == _accel.numpy_capability().ok
    _accel.set_numpy_enabled(False)
    try:
        assert not _accel.numpy_enabled()  # override beats the env
    finally:
        _accel.set_numpy_enabled(None)


def test_batch_size_never_enters_cache_keys(config):
    # The knob must not exist anywhere in the job spec: same key fields,
    # same engine version, no batch_size field to leak.
    assert ENGINE_VERSION == "2"
    field_names = {f.name for f in dataclasses.fields(SimJob)}
    assert "batch_size" not in field_names
    trace = make_trace("mcf_inp", 2000)
    job = SimJob("baseline", TraceRef.from_trace(trace), config)
    assert job.cache_key == SimJob(
        "baseline", TraceRef.from_trace(trace), config
    ).cache_key
