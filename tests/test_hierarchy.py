"""Integration tests for the cache hierarchy."""

import pytest

from repro.cache.hierarchy import Hierarchy
from repro.prefetchers.base import (
    L2AccessInfo,
    L2Prefetcher,
    NullL1Prefetcher,
    PrefetchRequest,
)
from repro.sim.config import default_config


def make_hierarchy(l2_pf=None, l1_pf=None):
    return Hierarchy(default_config(), l2_pf, l1_pf or NullL1Prefetcher())


class RecordingPrefetcher(L2Prefetcher):
    """Observes the L2 stream; optionally requests fixed targets."""

    name = "recording"

    def __init__(self, targets=None):
        self.seen = []
        self.targets = targets or {}
        self.useful = []

    def observe(self, access: L2AccessInfo):
        self.seen.append((access.pc, access.line, access.l2_hit,
                          access.from_l1_prefetcher))
        target = self.targets.get(access.line)
        if target is None:
            return []
        return [PrefetchRequest(target, trigger_pc=access.pc)]

    def note_useful(self, pc, line):
        self.useful.append((pc, line))


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self):
        h = make_hierarchy()
        r = h.demand_access(1, 1000, 0.0)
        assert r.hit_level == "dram"
        assert r.latency > h.config.dram.access_latency
        assert h.dram.stats.demand_reads == 1

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.demand_access(1, 1000, 0.0)
        r = h.demand_access(1, 1000, 500.0)
        assert r.hit_level == "l1"
        assert r.latency == h.config.l1d.hit_latency

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.demand_access(1, 1000, 0.0)
        # Evict line 1000 from L1 by filling its set (same L1 set index).
        sets = h.l1d.n_sets
        for k in range(1, h.l1d.assoc + 1):
            h.demand_access(1, 1000 + k * sets, 1000.0 * k)
        r = h.demand_access(1, 1000, 1e6)
        assert r.hit_level == "l2"

    def test_exclusive_l3_fills_from_l2_evictions(self):
        h = make_hierarchy()
        h.demand_access(1, 42, 0.0)
        assert not h.l3.contains(42)  # DRAM fill goes to L2, not L3
        sets = h.l2.n_sets
        for k in range(1, h.l2.assoc + 1):
            h.demand_access(1, 42 + k * sets, 1000.0 * k)
        assert h.l3.contains(42)  # victim spilled into LLC

    def test_demand_miss_counting(self):
        h = make_hierarchy()
        h.demand_access(1, 1, 0.0)
        h.demand_access(1, 2, 100.0)
        h.demand_access(1, 1, 200.0)  # L1 hit
        assert h.l2_demand_misses == 2


class TestL2PrefetcherIntegration:
    def test_prefetcher_sees_l2_stream_not_l1_hits(self):
        pf = RecordingPrefetcher()
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        h.demand_access(7, 100, 500.0)  # L1 hit: invisible to the L2 stream
        assert len(pf.seen) == 1

    def test_prefetch_fills_l2_and_counts_issue(self):
        pf = RecordingPrefetcher(targets={100: 200})
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        assert h.l2.contains(200)
        assert h.l2_pf_stats.issued == 1
        assert not h.l1d.contains(200)  # L2 prefetches do not fill L1

    def test_useful_prefetch_credited_on_timely_hit(self):
        pf = RecordingPrefetcher(targets={100: 200})
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        r = h.demand_access(8, 200, 10_000.0)  # long after fill completes
        assert r.hit_level == "l2"
        assert r.consumed_prefetch_pc == 7
        assert h.l2_pf_stats.useful == 1
        assert pf.useful == [(7, 200)]

    def test_late_prefetch_pays_residual_latency(self):
        pf = RecordingPrefetcher(targets={100: 200})
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        r = h.demand_access(8, 200, 1.0)  # fill still in flight
        assert r.consumed_prefetch_pc == 7
        assert r.late_prefetch
        assert r.latency > h.config.l2.hit_latency

    def test_duplicate_prefetch_not_issued(self):
        pf = RecordingPrefetcher(targets={100: 200})
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        h.demand_access(7, 100 + h.l1d.n_sets * 100, 1.0)
        pf.targets[100 + h.l1d.n_sets * 100] = 200  # same target again
        issued_before = h.l2_pf_stats.issued
        h.demand_access(7, 100, 20_000.0)
        # Target 200 already resides in L2: no re-issue.
        assert h.l2_pf_stats.issued == issued_before

    def test_prefetch_traffic_counted(self):
        pf = RecordingPrefetcher(targets={100: 200})
        h = make_hierarchy(pf)
        h.demand_access(7, 100, 0.0)
        assert h.dram.stats.prefetch_reads == 1


class TestMetadataPartitioning:
    def test_set_metadata_ways_shrinks_data(self):
        h = make_hierarchy()
        full = h.l3.data_ways
        h.set_metadata_ways(4)
        assert h.l3.data_ways == full - 4
        assert h.metadata_ways == 4

    def test_resize_notifies_prefetcher(self):
        class Resizable(RecordingPrefetcher):
            def __init__(self):
                super().__init__()
                self.capacities = []

            def on_metadata_resize(self, capacity):
                self.capacities.append(capacity)

        pf = Resizable()
        h = Hierarchy(default_config(), pf)
        h.set_metadata_ways(2)
        assert pf.capacities == [default_config().metadata_capacity_for_ways(2)]

    def test_out_of_range_ways_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.set_metadata_ways(99)


class TestPrefetchQueue:
    def test_queue_drains_as_mshrs_retire(self):
        pf = RecordingPrefetcher()
        h = make_hierarchy(pf)
        # Saturate MSHRs with a burst of prefetches at the same cycle.
        reqs = [PrefetchRequest(5000 + i, trigger_pc=1) for i in range(64)]
        issued = h.issue_l2_prefetches(reqs, 0.0)
        assert issued <= h.l2_mshr.capacity
        assert len(h._pf_queue) > 0
        # A demand access far in the future retires MSHRs and drains.
        h.demand_access(2, 9999, 1e6)
        assert len(h._pf_queue) == 0
