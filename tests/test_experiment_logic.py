"""Deeper tests for experiment-module logic (shapes on small runs)."""

import pytest

from repro.experiments.fig01_pattern import PATTERN_THRESHOLD, analyze_pattern
from repro.experiments.fig06_accuracy_levels import LEVELS, AccuracyLevels
from repro.experiments.fig08_markov_targets import target_distribution
from repro.experiments.fig16_sensitivity import (
    EL_ACC_VALUES,
    MVB_CANDIDATES,
    N_BITS_VALUES,
)
from repro.experiments.fig19_breakdown import STATES


class TestFig01Logic:
    def test_conf_timeline_bounded(self):
        a = analyze_pattern(30_000)
        assert all(0 <= c <= 15 for c in a.conf_timeline)

    def test_events_classified(self):
        a = analyze_pattern(30_000)
        kinds = set(a.events)
        assert kinds <= {"blue_dot", "red_dot", "blue_star", "red_star"}
        assert "blue_dot" in kinds and "red_dot" in kinds

    def test_interleaving_not_phase_separated(self):
        """Blue and red dots alternate (the Fig. 1 'highly variable'
        property), rather than appearing in one contiguous block each."""
        a = analyze_pattern(30_000)
        dots = [e for e in a.events if e.endswith("_dot")]
        switches = sum(1 for x, y in zip(dots, dots[1:]) if x != y)
        assert switches > 20

    def test_threshold_is_midscale(self):
        assert PATTERN_THRESHOLD == 8


class TestFig06Logic:
    def test_levels_partition_unit_interval(self):
        lo = min(level[1] for level in LEVELS)
        hi = max(level[2] for level in LEVELS)
        assert lo == 0.0 and hi > 1.0
        for acc in (0.0, 0.33, 0.5, 0.99, 1.0):
            matches = [n for n, a, b in LEVELS if a <= acc < b]
            assert len(matches) == 1

    def test_level_counts(self):
        levels = AccuracyLevels({1: 0.9, 2: 0.5, 3: 0.1, 4: 0.95})
        counts = levels.level_counts
        assert counts == {"high": 2, "medium": 1, "low": 1}
        assert levels.stratified

    def test_not_stratified_single_level(self):
        assert not AccuracyLevels({1: 0.9, 2: 0.95}).stratified


class TestFig08Logic:
    def test_distribution_sums_to_one(self):
        pcs = [1] * 10
        lines = [1, 2, 1, 3, 1, 2, 4, 5, 4, 6]
        dist = target_distribution(pcs, lines)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_multi_target_detected(self):
        pcs = [1] * 6
        lines = [1, 2, 1, 3, 1, 4]  # address 1 has targets {2,3,4}
        dist = target_distribution(pcs, lines)
        assert dist[3] > 0

    def test_empty_stream(self):
        dist = target_distribution([], [])
        assert all(v == 0.0 for v in dist.values())


class TestSweepDefinitions:
    def test_fig16_sweeps_match_paper(self):
        assert EL_ACC_VALUES == [0.05, 0.15, 0.25]
        assert N_BITS_VALUES == [1, 2, 3]
        assert MVB_CANDIDATES == [1, 2, 4]

    def test_fig19_states_cumulative(self):
        flags = []
        for _name, features in STATES:
            flags.append(
                (features.replacement, features.insertion, features.mvb,
                 features.resizing)
            )
        # Each state turns exactly one more feature on, in order.
        expected = [
            (False, False, False, False),
            (True, False, False, False),
            (True, True, False, False),
            (True, True, True, False),
            (True, True, True, True),
        ]
        assert flags == expected
        # The ablation base is the Triage runtime, as in Section 5.9.
        assert all(f.runtime == "triage" for _n, f in STATES)
