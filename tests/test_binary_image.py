"""Unit tests for the binary-image model and Section 4.4 hint injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary import (
    BinaryImage,
    Instruction,
    inject_hint_instructions,
    inject_prefixes,
    inject_reserved_bits,
)
from repro.binary.image import HINT_INSTRUCTION_BYTES
from repro.core.hints import HINT_BITS, PCHint
from repro.workloads.spec import make_spec_trace


def simple_image(n_mem=10, isa="x86", reserved_every=2):
    """Hand-built image: n_mem memory instructions at PCs 100, 104, ..."""
    instrs = []
    for i in range(n_mem):
        instrs.append(
            Instruction(
                pc=100 + 4 * i,
                length=4,
                is_memory_access=True,
                has_reserved_bits=(i % reserved_every == 0),
            )
        )
        instrs.append(Instruction(pc=1000 + i, length=4, is_memory_access=False))
    return BinaryImage(instrs, isa)


def hints_for(image, n=None, priority=1):
    pcs = image.memory_pcs()
    if n is not None:
        pcs = pcs[:n]
    return {pc: PCHint(insert=True, priority=priority) for pc in pcs}


# ----------------------------------------------------------------------
# BinaryImage
# ----------------------------------------------------------------------
class TestBinaryImage:
    def test_layout_assigns_contiguous_addresses(self):
        img = simple_image(3)
        addrs = [i.address for i in img.instructions]
        lens = [i.encoded_length for i in img.instructions]
        for k in range(1, len(addrs)):
            assert addrs[k] == addrs[k - 1] + lens[k - 1]

    def test_text_bytes_matches_layout(self):
        img = simple_image(4)
        last = img.instructions[-1]
        assert img.text_bytes == last.address + last.encoded_length

    def test_unknown_isa_rejected(self):
        with pytest.raises(ValueError):
            BinaryImage([], isa="riscv")

    def test_from_trace_covers_all_pcs(self):
        trace = make_spec_trace("mcf", "inp", 5000)
        img = BinaryImage.from_trace(trace)
        assert set(img.memory_pcs()) == set(trace.pcs)

    def test_from_trace_x86_has_no_reserved_bits(self):
        trace = make_spec_trace("mcf", "inp", 3000)
        img = BinaryImage.from_trace(trace, isa="x86")
        assert all(
            not img.memory_instruction(pc).has_reserved_bits
            for pc in img.memory_pcs()
        )

    def test_from_trace_arm_reserved_fraction(self):
        trace = make_spec_trace("omnetpp", "inp", 5000)
        img = BinaryImage.from_trace(trace, isa="arm", reserved_bits_fraction=1.0)
        assert all(
            img.memory_instruction(pc).has_reserved_bits
            for pc in img.memory_pcs()
        )
        img0 = BinaryImage.from_trace(trace, isa="arm", reserved_bits_fraction=0.0)
        assert not any(
            img0.memory_instruction(pc).has_reserved_bits
            for pc in img0.memory_pcs()
        )

    def test_from_trace_arm_fixed_width(self):
        trace = make_spec_trace("mcf", "inp", 2000)
        img = BinaryImage.from_trace(trace, isa="arm")
        assert all(i.length == 4 for i in img.instructions)

    def test_from_trace_deterministic(self):
        trace = make_spec_trace("mcf", "inp", 2000)
        a = BinaryImage.from_trace(trace)
        b = BinaryImage.from_trace(trace)
        assert a.text_bytes == b.text_bytes
        assert a.n_instructions == b.n_instructions

    def test_bad_reserved_fraction_rejected(self):
        trace = make_spec_trace("mcf", "inp", 1000)
        with pytest.raises(ValueError):
            BinaryImage.from_trace(trace, reserved_bits_fraction=1.5)

    def test_icache_lines(self):
        img = simple_image(8)  # 16 instrs x 4 B = 64 B = exactly one line
        assert img.icache_lines == 1

    def test_dynamic_instructions_without_hints(self):
        trace = make_spec_trace("mcf", "inp", 2000)
        img = BinaryImage.from_trace(trace)
        assert img.dynamic_instructions(trace) == trace.instructions

    @given(n=st.integers(1, 30))
    @settings(max_examples=20)
    def test_memory_instruction_lookup(self, n):
        img = simple_image(n)
        for pc in img.memory_pcs():
            inst = img.memory_instruction(pc)
            assert inst is not None and inst.pc == pc
        assert img.memory_instruction(99_999) is None


# ----------------------------------------------------------------------
# Hint-instruction (hint buffer) injection
# ----------------------------------------------------------------------
class TestHintInstructionInjection:
    def test_instructions_prepended_at_entry(self):
        img = simple_image(10)
        hints = hints_for(img, 5)
        new, buffer, report = inject_hint_instructions(img, hints)
        assert new.n_hint_instructions == 5
        assert all(i.is_hint for i in new.instructions[:5])
        assert len(buffer) == 5

    def test_capacity_caps_and_prefers_hot_pcs(self):
        img = simple_image(10)
        hints = hints_for(img)
        misses = {pc: i for i, pc in enumerate(img.memory_pcs())}
        hottest = max(misses, key=misses.get)
        coldest = min(misses, key=misses.get)
        new, buffer, report = inject_hint_instructions(
            img, hints, miss_counts=misses, capacity=3
        )
        assert report.hinted_pcs == 3
        assert report.dropped_pcs == 7
        assert buffer.lookup(hottest) is not None
        assert buffer.lookup(coldest) is None

    def test_static_and_dynamic_costs(self):
        img = simple_image(10)
        hints = hints_for(img, 4)
        new, _, report = inject_hint_instructions(img, hints)
        assert report.static_bytes_added == 4 * HINT_INSTRUCTION_BYTES
        assert report.dynamic_instructions_added == 4
        assert new.text_bytes == img.text_bytes + report.static_bytes_added

    def test_dynamic_instruction_accounting_on_trace(self):
        trace = make_spec_trace("mcf", "inp", 4000)
        img = BinaryImage.from_trace(trace)
        hints = {pc: PCHint(True, 1) for pc in img.memory_pcs()[:8]}
        new, _, _ = inject_hint_instructions(img, hints)
        assert new.dynamic_instructions(trace) == trace.instructions + len(hints)

    def test_paper_storage_arithmetic(self):
        """128-entry buffer = 0.19 KB (Section 5.10)."""
        img = simple_image(200)
        hints = hints_for(img)
        _, buffer, report = inject_hint_instructions(img, hints, capacity=128)
        assert report.hinted_pcs == 128
        assert buffer.storage_bytes == pytest.approx(0.19 * 1024, rel=0.02)

    def test_unknown_pcs_not_injected(self):
        img = simple_image(5)
        hints = {424242: PCHint(True, 0)}
        new, buffer, report = inject_hint_instructions(img, hints)
        assert report.hinted_pcs == 0
        assert report.dropped_pcs == 1

    def test_bad_capacity_rejected(self):
        img = simple_image(2)
        with pytest.raises(ValueError):
            inject_hint_instructions(img, hints_for(img), capacity=0)


# ----------------------------------------------------------------------
# x86 prefix injection
# ----------------------------------------------------------------------
class TestPrefixInjection:
    def test_prefixed_instructions_grow(self):
        img = simple_image(6)
        hints = hints_for(img, 3)
        new, report = inject_prefixes(img, hints)
        assert report.static_bytes_added == 3
        assert new.text_bytes == img.text_bytes + 3

    def test_paper_icache_arithmetic(self):
        """3 bits x 128 instructions = 48 B payload -> 6 B per line-count
        accounting in Section 4.4 (3 x 128 / 64 = 6)."""
        img = simple_image(200)
        hints = hints_for(img)
        _, report = inject_prefixes(img, hints, limit=128)
        assert report.payload_bits == HINT_BITS * 128
        assert report.payload_bytes == 48.0
        assert report.icache_impact_fraction < 0.001

    def test_no_dynamic_overhead(self):
        img = simple_image(4)
        _, report = inject_prefixes(img, hints_for(img))
        assert report.dynamic_instructions_added == 0

    def test_arm_rejected(self):
        trace = make_spec_trace("mcf", "inp", 1000)
        img = BinaryImage.from_trace(trace, isa="arm")
        with pytest.raises(ValueError):
            inject_prefixes(img, {})

    def test_addresses_relaid_out_after_prefixing(self):
        img = simple_image(6)
        new, _ = inject_prefixes(img, hints_for(img, 6))
        addrs = [i.address for i in new.instructions]
        lens = [i.encoded_length for i in new.instructions]
        for k in range(1, len(addrs)):
            assert addrs[k] == addrs[k - 1] + lens[k - 1]


# ----------------------------------------------------------------------
# Reserved-bits injection
# ----------------------------------------------------------------------
class TestReservedBitsInjection:
    def test_zero_cost(self):
        img = simple_image(10, isa="arm")
        _, report = inject_reserved_bits(img, hints_for(img))
        assert report.static_bytes_added == 0
        assert report.dynamic_instructions_added == 0
        assert report.payload_bits == 0

    def test_applicability_constraint(self):
        """Only instructions with reserved bits can carry hints."""
        img = simple_image(10, isa="arm", reserved_every=2)  # half have bits
        _, report = inject_reserved_bits(img, hints_for(img))
        assert report.hinted_pcs == 5
        assert report.dropped_pcs == 5

    def test_image_unchanged(self):
        img = simple_image(4, isa="arm")
        new, _ = inject_reserved_bits(img, hints_for(img))
        assert new is img
