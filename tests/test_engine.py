"""Integration tests for the simulation engine and timing model."""

import pytest

from repro.prefetchers.triage import TriagePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.cpu import TimingModel
from repro.sim.engine import make_l1_prefetcher, run_simulation
from repro.workloads.spec import make_spec_trace


def small_trace(n=20_000):
    return make_spec_trace("xalancbmk", "ref", n)


class TestTimingModel:
    def test_instruction_cycles(self):
        tm = TimingModel(issue_width=10, hide_cycles=12.0, mlp=4)
        assert tm.instruction_cycles(9) == pytest.approx(1.0)

    def test_short_latency_fully_hidden(self):
        tm = TimingModel(issue_width=10, hide_cycles=12.0, mlp=4)
        assert tm.stall_cycles(11.0) == 0.0

    def test_long_latency_divided_by_mlp(self):
        tm = TimingModel(issue_width=10, hide_cycles=12.0, mlp=4)
        assert tm.stall_cycles(212.0) == pytest.approx(50.0)

    def test_for_config_caps_mlp_at_mshrs(self):
        cfg = default_config()
        tm = TimingModel.for_config(cfg, workload_mlp=1000)
        assert tm.mlp == cfg.l2.mshrs


class TestEngine:
    def test_deterministic(self):
        cfg = default_config()
        trace = small_trace()
        a = run_simulation(trace, cfg, None, "baseline")
        b = run_simulation(trace, cfg, None, "baseline")
        assert a.cycles == b.cycles
        assert a.dram_reads == b.dram_reads

    def test_ipc_positive_and_bounded(self):
        cfg = default_config()
        result = run_simulation(small_trace(), cfg, None, "baseline")
        assert 0.0 < result.ipc <= cfg.core.issue_width

    def test_warmup_excluded_from_instructions(self):
        cfg = default_config()
        trace = small_trace()
        full = run_simulation(trace, cfg, None, "b", warmup_frac=0.0)
        part = run_simulation(trace, cfg, None, "b", warmup_frac=0.5)
        assert part.instructions < full.instructions

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(small_trace(2000), default_config(), None, "b",
                           warmup_frac=1.0)

    def test_prefetcher_improves_ipc_on_temporal_trace(self):
        cfg = default_config()
        trace = small_trace(60_000)
        base = run_simulation(trace, cfg, None, "baseline")
        pf = TriagePrefetcher(cfg, degree=4, replacement="srrip")
        res = run_simulation(trace, cfg, pf, "triage")
        assert res.ipc > base.ipc

    def test_initial_metadata_ways_applied(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, initial_ways=4, dueller_enabled=False)
        res = run_simulation(small_trace(5_000), cfg, pf, "tg")
        assert res.metadata_ways_final == 4

    def test_resize_window_drives_dueller(self):
        cfg = default_config()
        pf = TriangelPrefetcher(cfg, initial_ways=2)
        res = run_simulation(small_trace(60_000), cfg, pf, "tg",
                             resize_window=4096)
        assert 1 <= res.metadata_ways_final <= cfg.l3.assoc // 2

    def test_miss_by_pc_collected(self):
        cfg = default_config()
        res = run_simulation(small_trace(), cfg, None, "baseline")
        assert res.miss_by_pc
        assert sum(res.miss_by_pc.values()) == res.l2_demand_misses

    def test_l1_prefetcher_factory(self):
        cfg = default_config()
        assert make_l1_prefetcher(cfg).degree == cfg.l1_prefetch_degree
        assert make_l1_prefetcher(cfg.with_l1_prefetcher("ipcp")).name == "ipcp"
        assert make_l1_prefetcher(cfg.with_l1_prefetcher("none")).name == "none"
        with pytest.raises(ValueError):
            make_l1_prefetcher(cfg.with_l1_prefetcher("magic"))

    def test_speedup_requires_same_workload(self):
        cfg = default_config()
        a = run_simulation(small_trace(2_000), cfg, None, "baseline")
        other = make_spec_trace("mcf", "inp", 2_000)
        b = run_simulation(other, cfg, None, "baseline")
        with pytest.raises(ValueError):
            b.speedup_over(a)


class TestConfigVariants:
    def test_with_dram_channels(self):
        cfg = default_config().with_dram_channels(2)
        assert cfg.dram.channels == 2
        # More bandwidth can only help.
        trace = small_trace(40_000)
        one = run_simulation(trace, default_config(), None, "baseline")
        two = run_simulation(trace, cfg, None, "baseline")
        assert two.ipc >= one.ipc * 0.999

    def test_metadata_capacity_math(self):
        cfg = default_config()
        # 2 MB LLC, 16 ways, 64 B lines -> 2048 sets; 12 entries per line.
        assert cfg.llc_sets == 2048
        assert cfg.metadata_entries_per_llc_way == 2048 * 12
        assert cfg.metadata_capacity_for_ways(8) == 196_608  # the 1 MB table
