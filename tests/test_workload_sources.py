"""Workload-source registry: catalog round-trips, digests, import e2e.

Covers the ISSUE-4 acceptance criteria: generator scenarios are
selectable by label with seed-deterministic traces; a k6 trace file can
be imported and run end-to-end through ``api.run`` with a digest-stable
cache key; and a file-source content change produces a *different*
runner cache key.
"""

import json

import pytest

import repro.api as api
from repro import cli
from repro.experiments.common import suite_jobs, DEFAULT_SCHEMES
from repro.runner import Runner, SimJob, TraceRef, make_runner
from repro.sim.config import default_config
from repro.workloads.generators import (
    GENERATOR_SCENARIOS,
    GeneratorScenario,
    register_generator_scenario,
    scenario_digest,
)
from repro.workloads.inputs import all_labels, make_trace, resolve_traces
from repro.workloads.sources import (
    TRACE_DIR_ENV,
    all_sources,
    file_sources,
    get_source,
    import_trace,
    trace_dir,
)
from repro.workloads.tracefile import save_json_trace, save_k6_trace


@pytest.fixture
def tracedir(tmp_path, monkeypatch):
    """An isolated, activated trace directory."""
    d = tmp_path / "traces"
    d.mkdir()
    monkeypatch.setenv(TRACE_DIR_ENV, str(d))
    return d


@pytest.fixture
def no_tracedir(monkeypatch, tmp_path):
    """No trace dir configured (and cwd far from any ./traces)."""
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    monkeypatch.chdir(tmp_path)


class TestCatalogNamespace:
    def test_generator_scenarios_in_catalog(self, no_tracedir):
        labels = all_labels()
        gen = [label for label in labels if get_source(label).kind == "generator"]
        assert len(gen) >= 8, "starter pack must ship >= 8 generator scenarios"
        for label in gen:
            assert label in GENERATOR_SCENARIOS

    def test_synthetic_labels_unchanged(self, no_tracedir):
        # The historical catalog (SPEC personas + CRONO kernels) survives.
        labels = set(all_labels())
        for expected in ("mcf_inp", "omnetpp_inp", "gcc_expr",
                         "bfs_100000_16", "sssp_100000_5"):
            assert expected in labels

    def test_every_source_has_valid_kind(self, no_tracedir):
        for source in all_sources().values():
            assert source.kind in ("synthetic", "file", "generator")
            assert source.description

    def test_unknown_label_rejected(self, no_tracedir):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_traces(["definitely_not_a_workload"], 1000)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("label", [
        "gen_ptrchase_l2", "gen_bfs_frontier", "gen_stream_scan",
        "gen_phase_mix", "gen_entropy_noise",
    ])
    def test_seed_deterministic(self, label):
        a = make_trace(label, 4000)
        b = make_trace(label, 4000)
        assert a.pcs == b.pcs
        assert a.lines == b.lines
        assert a.gaps == b.gaps
        assert a.label == label

    def test_scenarios_differ_from_each_other(self):
        a = make_trace("gen_ptrchase_l2", 3000)
        b = make_trace("gen_ptrchase_llc", 3000)
        assert a.lines != b.lines

    def test_digest_covers_records_and_params(self):
        scn = GENERATOR_SCENARIOS["gen_stream_scan"]
        assert scenario_digest(scn, 1000) != scenario_digest(scn, 2000)
        edited = GeneratorScenario(
            scn.label, scn.family, scn.description, scn.seed, scn.mlp,
            scn.params + (("entropy", 0.5),),
        )
        assert scenario_digest(edited, 1000) != scenario_digest(scn, 1000)

    def test_registration_conflict_rejected(self):
        scn = GENERATOR_SCENARIOS["gen_stream_scan"]
        clone = GeneratorScenario(
            scn.label, scn.family, scn.description, scn.seed + 1, scn.mlp,
            scn.params,
        )
        with pytest.raises(ValueError, match="already registered"):
            register_generator_scenario(clone)

    def test_user_registered_scenario_is_selectable(self):
        label = "gen_test_user_scenario"
        register_generator_scenario(GeneratorScenario(
            label, "stream_scan", "test-only scenario", seed=99,
            params=(("footprint_lines", 512),),
        ))
        try:
            assert label in all_labels()
            trace = make_trace(label, 1000)
            assert len(trace) == 1000
            assert trace.source_digest.startswith("generator:")
        finally:
            GENERATOR_SCENARIOS.pop(label, None)


class TestSourceDigestsInRunner:
    def test_resolved_traces_carry_source_digest(self, no_tracedir):
        trace = resolve_traces(["mcf_inp"], 2000)[0]
        assert trace.source_digest == "catalog:mcf_inp:2000"
        gen = resolve_traces(["gen_stream_scan"], 2000)[0]
        assert gen.source_digest.startswith("generator:gen_stream_scan:")

    def test_suite_jobs_use_source_digests(self, no_tracedir):
        traces = resolve_traces(["mcf_inp", "gen_stream_scan"], 1500)
        jobs, slots, custom = suite_jobs(
            traces, default_config(), DEFAULT_SCHEMES
        )
        assert not custom
        digests = {job.trace.digest for job in jobs}
        assert "catalog:mcf_inp:1500" in digests
        assert any(d.startswith("generator:gen_stream_scan:") for d in digests)
        # Source refs are by-reference: no payload pickled into the job.
        for job in jobs:
            assert job.trace.payload is None

    def test_source_ref_resolves_to_same_trace(self, no_tracedir):
        trace = resolve_traces(["gen_bfs_frontier"], 1200)[0]
        ref = TraceRef.for_trace(trace)
        again = ref.resolve()
        assert again.lines == trace.lines
        assert again.pcs == trace.pcs

    def test_adhoc_trace_still_inlined(self):
        trace = make_trace("mcf", 1000)  # bare app name: legacy path
        ref = TraceRef.for_trace(trace)
        assert ref.payload is trace
        assert ref.digest.startswith("trace:")

    def test_file_digest_change_changes_cache_key(self, tracedir):
        path = tracedir / "cap.trc"
        save_k6_trace(make_trace("mcf_inp", 800), path)
        label = next(iter(file_sources(tracedir)))
        config = default_config()

        trace = resolve_traces([label], 800)[0]
        job1 = SimJob("baseline", TraceRef.for_trace(trace), config)
        key1 = job1.cache_key

        # Append one record: same label, different bytes => different key.
        with path.open("a") as fh:
            fh.write("0x7fff0040 P_MEM_RD 999999\n")
        trace2 = resolve_traces([label], 800)[0]
        job2 = SimJob("baseline", TraceRef.for_trace(trace2), config)
        assert job2.cache_key != key1

    def test_file_digest_stable_across_rediscovery(self, tracedir):
        path = tracedir / "cap.trc"
        save_k6_trace(make_trace("omnetpp_inp", 600), path)
        label = next(iter(file_sources(tracedir)))
        d1 = get_source(label).digest(600)
        d2 = get_source(label).digest(600)
        assert d1 == d2
        assert d1.startswith("file:")


class TestFileSourcesAndImport:
    def test_discovery_formats(self, tracedir):
        save_k6_trace(make_trace("mcf_inp", 500), tracedir / "a.trc")
        save_json_trace(make_trace("omnetpp_inp", 400), tracedir / "b.json")
        found = file_sources(tracedir)
        assert set(found) == {"a", "b"}
        assert all(s.kind == "file" for s in found.values())
        a = make_trace("a", 500)
        assert a.label == "a"
        assert len(a) == 500

    def test_label_collision_gets_prefixed(self, tracedir):
        save_k6_trace(make_trace("mcf_inp", 300), tracedir / "mcf_inp.trc")
        found = file_sources(tracedir)
        assert "file_mcf_inp" in found  # must not shadow the persona

    def test_import_to_catalog_end_to_end(self, tracedir, tmp_path, capsys):
        # 1. a "captured" k6 trace somewhere outside the trace dir
        captured = tmp_path / "captured_run.trc"
        save_k6_trace(make_trace("mcf_inp", 1000), captured)

        # 2. import via the CLI
        assert cli.main([
            "workloads", "import", str(captured), "--trace-dir", str(tracedir),
        ]) == 0
        out = capsys.readouterr().out
        assert "workload label: captured_run" in out

        # 3. label visible in workloads list
        assert cli.main(["workloads", "list"]) == 0
        assert "captured_run" in capsys.readouterr().out
        assert "captured_run" in all_labels()

        # 4. runs end-to-end through the facade, cached digest-stably
        cache = tmp_path / "cache"
        runner = make_runner(jobs=1, cache_dir=cache)
        result = api.run(
            "fig10", records=800, workloads=["captured_run"],
            schemes=["triangel"], runner=runner,
        )
        assert result.payload.by_workload["captured_run"]["triangel"]
        executed_first = runner.stats.executed
        assert executed_first > 0

        runner2 = make_runner(jobs=1, cache_dir=cache)
        again = api.run(
            "fig10", records=800, workloads=["captured_run"],
            schemes=["triangel"], runner=runner2,
        )
        assert runner2.stats.executed == 0, "second run must be all cache hits"
        assert runner2.stats.cache_hits == executed_first
        assert again.to_dict()["payload"] == result.to_dict()["payload"]

    def test_import_rejects_malformed(self, tracedir, tmp_path):
        bad = tmp_path / "bad.trc"
        bad.write_text("not a k6 line\n")
        with pytest.raises(ValueError):
            import_trace(bad, directory=tracedir)

    def test_import_rejects_unknown_suffix(self, tracedir, tmp_path):
        bad = tmp_path / "bad.xyz"
        bad.write_text("whatever")
        with pytest.raises(ValueError, match="unsupported trace suffix"):
            import_trace(bad, directory=tracedir)

    def test_import_with_name(self, tracedir, tmp_path):
        captured = tmp_path / "x.json"
        save_json_trace(make_trace("gcc_166", 300), captured)
        label, dest = import_trace(captured, name="my-trace!",
                                   directory=tracedir)
        assert label == "my_trace"
        assert dest.name == "my_trace.json"
        assert label in all_labels()

    def test_default_trace_dir_activation(self, no_tracedir, tmp_path):
        captured = tmp_path / "cap.trc"
        save_k6_trace(make_trace("mcf_inp", 200), captured)
        label, dest = import_trace(captured)
        assert dest.parent.name == "traces"
        assert trace_dir() is not None
        assert label in all_labels()


class TestApiRoundTrips:
    def test_generator_label_through_api_run(self, no_tracedir):
        result = api.run(
            "fig10", records=1000, workloads=["gen_stream_scan"],
            schemes=["triangel"],
        )
        assert result.workloads == ["gen_stream_scan"]
        assert list(result.payload.by_workload) == ["gen_stream_scan"]
        blob = result.to_json()
        back = api.ExperimentResult.from_json(blob)
        assert list(back.payload.by_workload) == ["gen_stream_scan"]
        assert back.payload.to_dict() == result.payload.to_dict()

    def test_parallel_runner_resolves_source_refs(self, no_tracedir, tmp_path):
        """Worker processes re-materialize generator traces from labels."""
        runner = Runner(jobs=2, cache_dir=None)
        traces = resolve_traces(["gen_stream_scan", "gen_ptrchase_l2"], 900)
        config = default_config()
        jobs = [SimJob("baseline", TraceRef.for_trace(t), config)
                for t in traces]
        serial = Runner(jobs=1).run(jobs)
        parallel = runner.run(jobs)
        assert [json.dumps(p.to_dict()) for p in serial] == \
               [json.dumps(p.to_dict()) for p in parallel]

    def test_workload_sources_listing(self, no_tracedir):
        sources = api.workload_sources()
        labels = [s.label for s in sources]
        assert labels == all_labels()
