"""Tests for trace persistence and trace characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.analysis import (
    COLD,
    characterize,
    pc_stride_profiles,
    reuse_histogram,
    stack_distances,
    stack_distances_naive,
    summary_table,
    working_set_curve,
)
from repro.workloads.base import Trace
from repro.workloads.crono import make_crono_trace
from repro.workloads.spec import make_spec_trace
from repro.workloads.tracefile import load_trace, save_trace


# ----------------------------------------------------------------------
# tracefile round-trips
# ----------------------------------------------------------------------
class TestTraceFile:
    def test_round_trip_exact(self, tmp_path):
        trace = make_spec_trace("mcf", "inp", 3000)
        path = save_trace(trace, tmp_path / "mcf.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.input_name == trace.input_name
        assert loaded.mlp == trace.mlp
        assert loaded.pcs == trace.pcs
        assert loaded.lines == trace.lines
        assert loaded.gaps == trace.gaps

    def test_suffix_added(self, tmp_path):
        trace = make_spec_trace("mcf", "inp", 500)
        path = save_trace(trace, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert load_trace(path).label == trace.label

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.npz")

    def test_non_trace_npz_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "other.npz"
        np.savez(path, whatever=np.arange(4))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim.config import default_config
        from repro.sim.engine import run_simulation

        trace = make_spec_trace("omnetpp", "inp", 4000)
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        a = run_simulation(trace, default_config(), None, "baseline")
        b = run_simulation(loaded, default_config(), None, "baseline")
        assert a.cycles == b.cycles
        assert a.dram_reads == b.dram_reads

    @given(
        pcs=st.lists(st.integers(0, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, tmp_path_factory, pcs):
        lines = [pc * 7 + 3 for pc in pcs]
        gaps = [pc % 5 for pc in pcs]
        trace = Trace("t", "x", pcs, lines, gaps)
        path = tmp_path_factory.mktemp("traces") / "t.npz"
        loaded = load_trace(save_trace(trace, path))
        assert (loaded.pcs, loaded.lines, loaded.gaps) == (pcs, lines, gaps)


# ----------------------------------------------------------------------
# stack distances
# ----------------------------------------------------------------------
class TestStackDistances:
    def test_cold_accesses(self):
        assert stack_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse_is_zero(self):
        assert stack_distances([7, 7]) == [COLD, 0]

    def test_classic_example(self):
        # a b c a: a's reuse skips b and c -> distance 2
        assert stack_distances([1, 2, 3, 1]) == [COLD, COLD, COLD, 2]

    def test_duplicate_intervening_counted_once(self):
        # a b b a: only one distinct line between -> distance 1
        assert stack_distances([1, 2, 2, 1])[-1] == 1

    @given(st.lists(st.integers(0, 12), min_size=0, max_size=120))
    @settings(max_examples=120)
    def test_matches_naive(self, lines):
        assert stack_distances(lines) == stack_distances_naive(lines)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
    @settings(max_examples=60)
    def test_distance_bounds(self, lines):
        dists = stack_distances(lines)
        n_distinct = len(set(lines))
        for d in dists:
            assert d == COLD or 0 <= d < n_distinct

    def test_cold_count_equals_distinct_lines(self):
        lines = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        dists = stack_distances(lines)
        assert sum(1 for d in dists if d == COLD) == len(set(lines))


# ----------------------------------------------------------------------
# histograms / profiles / characterization
# ----------------------------------------------------------------------
class TestReuseHistogram:
    def test_counts_sum_to_accesses(self):
        trace = make_spec_trace("mcf", "inp", 4000)
        hist = reuse_histogram(trace.lines)
        assert sum(hist.values()) == len(trace.lines)

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            reuse_histogram([1, 2], bucket_edges=[64, 16])

    def test_custom_edges(self):
        hist = reuse_histogram([1, 2, 1, 2], bucket_edges=[1, 8])
        assert hist["cold"] == 2
        assert hist["<=1"] == 2


class TestStrideProfiles:
    def test_pure_stride_pc(self):
        pcs = [1] * 100
        lines = list(range(0, 400, 4))
        profiles = pc_stride_profiles(pcs, lines)
        assert profiles[1].dominant_stride == 4
        assert profiles[1].stride_share == 1.0
        assert profiles[1].stride_friendly

    def test_random_pc_not_friendly(self):
        import random

        rng = random.Random(7)
        pcs = [2] * 200
        lines = [rng.randrange(1 << 20) for _ in range(200)]
        profiles = pc_stride_profiles(pcs, lines)
        assert not profiles[2].stride_friendly

    def test_csr_scan_is_friendly_via_sequential_share(self):
        """Element-granularity scans (line deltas mostly 0, periodic +1)."""
        pcs = [3] * 160
        lines = [i // 16 for i in range(160)]
        profiles = pc_stride_profiles(pcs, lines)
        assert profiles[3].sequential_share > 0.9
        assert profiles[3].stride_friendly

    def test_min_accesses_filter(self):
        profiles = pc_stride_profiles([1, 1, 1], [0, 4, 8], min_accesses=16)
        assert profiles == {}


class TestCharacterize:
    def test_spec_persona_is_temporal_territory(self):
        c = characterize(make_spec_trace("mcf", "inp", 30_000))
        assert c.repeat_fraction > 0.3
        assert c.stride_friendly_share < 0.5
        assert "temporal" in c.verdict()

    def test_crono_has_more_stride_mass_than_spec(self):
        spec = characterize(make_spec_trace("mcf", "inp", 20_000))
        crono = characterize(make_crono_trace("pagerank_100000_100", 20_000))
        assert crono.stride_friendly_share > spec.stride_friendly_share

    def test_summary_table_renders_all_rows(self):
        chars = [
            characterize(make_spec_trace("mcf", "inp", 5000)),
            characterize(make_spec_trace("omnetpp", "inp", 5000)),
        ]
        table = summary_table(chars)
        assert "mcf_inp" in table and "omnetpp_inp" in table

    def test_counts_are_consistent(self):
        trace = make_spec_trace("gcc", "166", 8000)
        c = characterize(trace)
        assert c.n_records == len(trace)
        assert c.n_pcs == len(set(trace.pcs))
        assert c.footprint_lines == len(set(trace.lines))
        assert 0.0 <= c.repeat_fraction <= 1.0
        assert 0.0 <= c.markov_multi_target_share <= 1.0


class TestWorkingSetCurve:
    def test_window_partitioning(self):
        lines = list(range(100))
        curve = working_set_curve(lines, window=30)
        assert [start for start, _ in curve] == [0, 30, 60, 90]
        assert curve[0][1] == 30
        assert curve[-1][1] == 10

    def test_repeating_lines_shrink_working_set(self):
        curve = working_set_curve([1, 2, 3] * 10, window=30)
        assert curve[0][1] == 3

    def test_bad_window(self):
        with pytest.raises(ValueError):
            working_set_curve([1], window=0)
