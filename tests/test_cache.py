"""Unit tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import PF_L1, PF_L2, Cache


def small_cache(assoc=4, sets=4, replacement="lru"):
    return Cache("T", 64 * assoc * sets, assoc, 2, replacement)


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.probe(100) is None
        c.fill(100)
        way = c.probe(100)
        assert way is not None
        assert not c.on_demand_hit(100, way)  # demand fill: no prefetch credit
        assert c.stats.demand_hits == 1

    def test_set_mapping(self):
        c = small_cache(sets=4)
        assert c.set_index(0) == 0
        assert c.set_index(5) == 1
        assert c.set_index(7) == 3

    def test_capacity_eviction(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(1)
        evicted = c.fill(2)
        assert evicted is not None
        assert evicted.line == 0  # LRU
        assert c.probe(0) is None

    def test_refill_resident_line_evicts_nothing(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0)
        assert c.fill(0) is None

    def test_dirty_eviction_counts_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, dirty=True)
        c.fill(1)
        assert c.stats.writebacks == 1

    def test_invalidate(self):
        c = small_cache()
        c.fill(42)
        assert c.invalidate(42)
        assert c.probe(42) is None
        assert not c.invalidate(42)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 100, 4, 2)


class TestPrefetchBookkeeping:
    def test_useful_prefetch_once(self):
        c = small_cache()
        c.fill(7, prefetched=True, trigger_pc=0x99, pf_source=PF_L2)
        way = c.probe(7)
        assert c.was_prefetched(7, way)
        assert c.trigger_pc_of(7, way) == 0x99
        assert c.pf_source_of(7, way) == PF_L2
        assert c.on_demand_hit(7, way)  # first touch consumes
        assert not c.on_demand_hit(7, way)  # second touch is a plain hit
        assert c.stats.useful_prefetches == 1

    def test_useless_eviction_counted(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, prefetched=True, trigger_pc=1)
        c.fill(1)
        assert c.stats.useless_evictions == 1

    def test_used_prefetch_not_useless_on_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.fill(0, prefetched=True, trigger_pc=1)
        c.on_demand_hit(0, c.probe(0))
        c.fill(1)
        assert c.stats.useless_evictions == 0

    def test_ready_cycle_stored(self):
        c = small_cache()
        c.fill(3, ready_cycle=123.5, prefetched=True)
        assert c.ready_cycle(3, c.probe(3)) == 123.5

    def test_pf_source_cleared_for_demand_fill(self):
        c = small_cache()
        c.fill(9, prefetched=False, pf_source=PF_L1)
        assert c.pf_source_of(9, c.probe(9)) == 0


class TestWayPartitioning:
    def test_shrink_invalidates_reserved_ways(self):
        c = small_cache(assoc=4, sets=2)
        for line in range(8):
            c.fill(line)
        assert c.occupancy() == 1.0
        c.set_data_ways(2)
        assert c.data_ways == 2
        assert c.capacity_lines == 4
        assert sum(1 for line in range(8) if c.probe(line) is not None) == 4

    def test_fills_respect_partition(self):
        c = small_cache(assoc=4, sets=1)
        c.set_data_ways(2)
        for line in range(4):
            c.fill(line)
        resident = [line for line in range(4) if c.probe(line) is not None]
        assert len(resident) == 2

    def test_grow_restores_capacity(self):
        c = small_cache(assoc=4, sets=1)
        c.set_data_ways(1)
        c.set_data_ways(4)
        for line in range(4):
            c.fill(line)
        assert all(c.probe(line) is not None for line in range(4))

    def test_invalid_ways_raises(self):
        c = small_cache(assoc=4)
        with pytest.raises(ValueError):
            c.set_data_ways(5)

    def test_shrink_counts_dirty_writebacks(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0, dirty=True)
        c.fill(1, dirty=True)
        c.set_data_ways(0)
        assert c.stats.writebacks == 2


@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=300),
    st.sampled_from(["lru", "plru", "srrip"]),
)
@settings(max_examples=40, deadline=None)
def test_cache_residency_invariants(lines, replacement):
    """Property: occupancy bounded, a filled line is immediately resident,
    and the per-set map never exceeds the data ways."""
    c = Cache("P", 64 * 4 * 4, 4, 2, replacement)
    for line in lines:
        c.fill(line)
        assert c.probe(line) is not None
    assert 0.0 < c.occupancy() <= 1.0
    for mapping in c._map:
        assert len(mapping) <= c.data_ways
    assert len(set(c.resident_lines())) == len(c.resident_lines())
