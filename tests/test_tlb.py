"""Tests for the TLB model and page-boundary prefetch constraint."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import Hierarchy
from repro.memory.tlb import (
    LINES_PER_PAGE,
    TLB,
    TLBConfig,
    page_of,
    same_page,
)
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


class TestPageMath:
    def test_lines_per_page(self):
        assert LINES_PER_PAGE == 64

    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(63) == 0
        assert page_of(64) == 1

    @given(line=st.integers(0, 1 << 40))
    @settings(max_examples=50)
    def test_same_page_reflexive_and_local(self, line):
        assert same_page(line, line)
        page_start = (line // LINES_PER_PAGE) * LINES_PER_PAGE
        assert same_page(line, page_start)
        assert not same_page(line, page_start + LINES_PER_PAGE)


class TestTLB:
    def test_first_access_misses_then_hits(self):
        tlb = TLB(TLBConfig(entries=4, walk_latency=25))
        assert tlb.access(100) == 25
        assert tlb.access(100) == 0
        assert tlb.access(110) == 0  # same page (lines 64..127)
        assert tlb.stats.hits == 2 and tlb.stats.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2, walk_latency=10))
        tlb.access(0 * LINES_PER_PAGE)
        tlb.access(1 * LINES_PER_PAGE)
        tlb.access(0 * LINES_PER_PAGE)  # refresh page 0
        tlb.access(2 * LINES_PER_PAGE)  # evicts page 1
        assert tlb.contains(0)
        assert not tlb.contains(1 * LINES_PER_PAGE)

    def test_capacity_never_exceeded(self):
        tlb = TLB(TLBConfig(entries=8))
        for page in range(50):
            tlb.access(page * LINES_PER_PAGE)
        assert len(tlb) == 8

    def test_contains_does_not_touch_stats(self):
        tlb = TLB()
        tlb.contains(5)
        assert tlb.stats.accesses == 0

    def test_miss_rate(self):
        tlb = TLB(TLBConfig(entries=4))
        for _ in range(2):
            tlb.access(0)
        assert tlb.stats.miss_rate == 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            TLBConfig(walk_latency=-1)

    @given(pages=st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_hits_plus_misses_equals_accesses(self, pages):
        tlb = TLB(TLBConfig(entries=8))
        for p in pages:
            tlb.access(p * LINES_PER_PAGE)
        assert tlb.stats.accesses == len(pages)
        assert len(tlb) == min(8, len(set(pages)))


class TestHierarchyIntegration:
    def test_tlb_disabled_by_default(self):
        h = Hierarchy(default_config())
        assert h.tlb is None

    def test_tlb_walks_add_latency(self):
        config = default_config().with_tlb(entries=4, walk_latency=50)
        h = Hierarchy(config)
        # Two accesses to the same line: first page walk, then TLB hit.
        first = h.demand_access(1, 10_000, 0.0)
        second = h.demand_access(1, 10_000, 500.0)
        assert first.latency >= 50
        assert second.latency < first.latency
        assert h.tlb.stats.misses == 1

    def test_page_constraint_drops_cross_page_prefetches(self):
        """A stride crossing pages issues fewer L1 prefetches when confined."""
        trace = make_spec_trace("mcf", "inp", 20_000)
        free = run_simulation(trace, default_config(), None, "baseline")
        confined = run_simulation(
            trace,
            default_config().with_page_constrained_l1_prefetch(),
            None,
            "baseline",
        )
        assert confined.l1_pf_issued <= free.l1_pf_issued

    def test_tlb_pressure_slows_irregular_workload(self):
        trace = make_spec_trace("mcf", "inp", 20_000)
        base = run_simulation(trace, default_config(), None, "baseline")
        walked = run_simulation(
            trace, default_config().with_tlb(entries=16), None, "baseline"
        )
        assert walked.ipc < base.ipc

    def test_with_tlb_returns_new_config(self):
        config = default_config()
        tlbed = config.with_tlb()
        assert not config.tlb_enabled
        assert tlbed.tlb_enabled
