"""Tests for workload generators: SPEC personas, CRONO, SimPoint."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.base import (
    AddressSpace,
    PCAllocator,
    QuasiSequentialComponent,
    RandomComponent,
    StrideComponent,
    TemporalChainComponent,
    Trace,
    build_trace,
    markov_target_counts,
)
from repro.workloads.crono import (
    CRONO_WORKLOADS,
    CSRGraph,
    make_crono_trace,
    parse_crono_name,
)
from repro.workloads.inputs import all_labels, make_trace
from repro.workloads.simpoint import (
    select_checkpoints,
    weighted_aggregate,
)
from repro.workloads.spec import (
    APP_PC_BLOCK,
    GCC_INPUTS,
    SPEC_WORKLOADS,
    make_spec_trace,
)

import random


class TestTraceBasics:
    def test_determinism(self):
        a = make_spec_trace("mcf", "inp", 5_000)
        b = make_spec_trace("mcf", "inp", 5_000)
        assert a.lines == b.lines and a.pcs == b.pcs and a.gaps == b.gaps

    def test_different_inputs_differ(self):
        a = make_spec_trace("gcc", "166", 5_000)
        b = make_spec_trace("gcc", "expr", 5_000)
        assert a.lines != b.lines

    def test_instructions_counts_gaps(self):
        t = Trace("x", "y", [1, 2], [10, 20], [3, 4])
        assert t.instructions == 2 + 7

    def test_interval_slicing(self):
        t = make_spec_trace("mcf", "inp", 2_000)
        s = t.interval(100, 200)
        assert len(s) == 100
        assert s.lines == t.lines[100:200]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace("x", "y", [1], [1, 2], [1])

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            make_spec_trace("doom", None, 100)


class TestComponents:
    def make(self, comp_cls, **kw):
        rng = random.Random(3)
        space = AddressSpace()
        return comp_cls(0x1000, space, **kw) if comp_cls is not TemporalChainComponent \
            else comp_cls(0x1000, space, rng, **kw)

    def test_chain_pool_lines_unique(self):
        rng = random.Random(3)
        comp = TemporalChainComponent(0x1000, AddressSpace(), rng,
                                      n_chains=10, chain_len=16)
        flat = [line for chain in comp.chains for line in chain]
        assert len(set(flat)) == len(flat)

    def test_chain_irregular_deltas(self):
        """Chain walks must not be stride-predictable."""
        rng = random.Random(3)
        comp = TemporalChainComponent(0x1000, AddressSpace(), rng,
                                      n_chains=4, chain_len=64,
                                      repeat_prob=1.0)
        lines = [comp.next_record(rng)[1] for _ in range(256)]
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        from collections import Counter
        _, top = Counter(deltas).most_common(1)[0]
        assert top / len(deltas) < 0.2  # no dominant stride

    def test_branch_variants_create_multi_targets(self):
        rng = random.Random(3)
        comp = TemporalChainComponent(0x1000, AddressSpace(), rng,
                                      n_chains=20, chain_len=32,
                                      repeat_prob=1.0, branch_prob=0.9)
        pcs, lines = [], []
        for _ in range(20_000):
            pc, line, _gap = comp.next_record(rng)
            pcs.append(pc)
            lines.append(line)
        counts = markov_target_counts(pcs, lines)
        multi = sum(1 for n in counts.values() if n >= 2)
        assert multi / len(counts) > 0.2

    def test_shuffle_useless_reuses_addresses(self):
        rng = random.Random(3)
        comp = TemporalChainComponent(0x1000, AddressSpace(), rng,
                                      n_chains=4, chain_len=16,
                                      repeat_prob=0.0,
                                      useless_kind="shuffle")
        lines = {comp.next_record(rng)[1] for _ in range(1000)}
        pool = {line for chain in comp.chains for line in chain}
        assert lines <= pool  # shuffled walks recycle pooled addresses

    def test_fresh_useless_generates_new_addresses(self):
        rng = random.Random(3)
        comp = TemporalChainComponent(0x1000, AddressSpace(), rng,
                                      n_chains=4, chain_len=16,
                                      repeat_prob=0.0, useless_kind="fresh")
        lines = {comp.next_record(rng)[1] for _ in range(1000)}
        pool = {line for chain in comp.chains for line in chain}
        assert not (lines & pool)

    def test_invalid_useless_kind(self):
        with pytest.raises(ValueError):
            TemporalChainComponent(0x1000, AddressSpace(), random.Random(1),
                                   useless_kind="maybe")

    def test_stride_component_loops(self):
        comp = StrideComponent(0x1000, AddressSpace(), length=4, stride=2)
        rng = random.Random(0)
        lines = [comp.next_record(rng)[1] for _ in range(8)]
        assert lines[:4] == lines[4:]
        assert lines[1] - lines[0] == 2

    def test_quasi_sequential_moves_forward(self):
        comp = QuasiSequentialComponent(0x1000, AddressSpace(), length=1000)
        rng = random.Random(0)
        lines = [comp.next_record(rng)[1] for _ in range(100)]
        assert all(b >= a or b == lines[0] for a, b in zip(lines, lines[1:]))

    def test_random_component_in_region(self):
        comp = RandomComponent(0x1000, AddressSpace(), region_lines=128)
        rng = random.Random(0)
        for _ in range(100):
            _, line, _ = comp.next_record(rng)
            assert comp.base <= line < comp.base + 128

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            build_trace("x", "y", [], 10, 1)


class TestSpecPersonas:
    @pytest.mark.parametrize("app,inp", SPEC_WORKLOADS)
    def test_personas_build(self, app, inp):
        t = make_spec_trace(app, inp, 3_000)
        assert len(t) == 3_000
        assert all(g >= 0 for g in t.gaps)

    def test_pc_ranges_disjoint_across_apps(self):
        pcs = {}
        for app, inp in SPEC_WORKLOADS:
            t = make_spec_trace(app, inp, 2_000)
            pcs[app] = set(t.pcs)
        apps = list(pcs)
        for i, a in enumerate(apps):
            for b in apps[i + 1:]:
                assert not (pcs[a] & pcs[b]), (a, b)

    def test_shared_load_pc_stable_across_inputs(self):
        """Fig. 7 Load A: the shared component keeps its PC in every input."""
        base_pc = 0x400000 + APP_PC_BLOCK["gcc"]
        for inp in GCC_INPUTS[:3]:
            t = make_spec_trace("gcc", inp, 2_000)
            assert base_pc in set(t.pcs)

    def test_input_specific_pcs_differ(self):
        """Fig. 7 Loads B/C: input-specific components get unique PCs."""
        t1 = set(make_spec_trace("gcc", "166", 4_000).pcs)
        t2 = set(make_spec_trace("gcc", "200", 4_000).pcs)
        assert t1 - t2 and t2 - t1


class TestCrono:
    def test_parse_names(self):
        assert parse_crono_name("bfs_100000_16") == ("bfs", 100000, 16)
        with pytest.raises(ValueError):
            parse_crono_name("quicksort_10_2")

    @pytest.mark.parametrize("name", CRONO_WORKLOADS)
    def test_kernels_emit(self, name):
        t = make_crono_trace(name, 5_000)
        assert len(t) == 5_000
        assert t.label == name

    def test_deterministic(self):
        a = make_crono_trace("bfs_100000_16", 3_000)
        b = make_crono_trace("bfs_100000_16", 3_000)
        assert a.lines == b.lines

    def test_csr_graph_well_formed(self):
        g = CSRGraph.random(100, 4, seed=1)
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.n_edges
        assert all(0 <= n < 100 for n in g.neighbors)
        assert len(g.weights) == g.n_edges

    def test_traversal_repeats_create_temporal_patterns(self):
        t = make_crono_trace("pagerank_100000_100", 30_000)
        counts = markov_target_counts(t.pcs, t.lines)
        # Repeated iterations must produce recurring successor pairs.
        assert len(counts) > 100


class TestSimPoint:
    def test_short_trace_single_checkpoint(self):
        t = make_spec_trace("mcf", "inp", 5_000)
        cps = select_checkpoints(t, interval=10_000)
        assert len(cps) == 1
        assert cps[0].weight == 1.0

    def test_weights_sum_to_one(self):
        t = make_spec_trace("gcc", "166", 60_000)
        cps = select_checkpoints(t, interval=5_000, max_clusters=4)
        assert sum(cp.weight for cp in cps) == pytest.approx(1.0)
        for cp in cps:
            assert 0 < cp.stop - cp.start <= 5_000

    def test_weighted_aggregate(self):
        assert weighted_aggregate([1.0, 3.0], [0.5, 0.5]) == 2.0
        with pytest.raises(ValueError):
            weighted_aggregate([1.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            weighted_aggregate([1.0], [0.0])


class TestInputCatalog:
    def test_all_labels_buildable(self):
        labels = all_labels()
        assert len(labels) >= 20
        # Spot-check a few to keep the test fast.
        for label in ["gcc_expr", "soplex_ref", "mcf_inp", "bfs_80000_8"]:
            assert label in labels
            t = make_trace(label, 2_000)
            assert len(t) == 2_000


class TestAllocators:
    def test_address_space_disjoint(self):
        space = AddressSpace()
        a = space.region(100)
        b = space.region(50)
        assert b >= a + 100

    def test_pc_allocator(self):
        alloc = PCAllocator()
        a = alloc.alloc(4)
        b = alloc.alloc(1)
        assert b == a + 4


@given(st.integers(100, 2000), st.integers(1, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_trace_generation_properties(n, seed):
    """Property: any (length, seed) yields a consistent, positive trace."""
    rng = random.Random(seed)
    space = AddressSpace()
    comp = TemporalChainComponent(0x1000, space, rng, n_chains=8, chain_len=8)
    t = build_trace("p", "q", [comp], n, seed)
    assert len(t) == n
    assert min(t.lines) >= 0
    assert t.instructions >= n
