"""Smoke tests: every shipped example runs end to end at reduced scale.

Examples are part of the public API surface — these tests keep them green
as the library evolves.  Each runs at a record count small enough for CI
but large enough that the code paths (profiling, learning, injection,
characterization) are actually exercised.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: example file -> kwargs for its main() at smoke scale.
EXAMPLES = {
    "quickstart.py": {"n_records": 12_000},
    "learning_inputs.py": {"n_records": 10_000},
    "graph_analytics.py": {"n_records": 15_000},
    "ablation_tour.py": {"n_records": 12_000},
    "offchip_metadata.py": {"n_records": 12_000},
    "hint_injection.py": {"n_records": 12_000},
    "trace_analysis.py": {"n_records": 10_000},
    "custom_workload.py": {},
    "simpoint_checkpoints.py": {"n_records": 15_000},
}


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples/ changed; update the smoke-test table"
    )


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main(**EXAMPLES[name])
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
