"""Tests for the extension experiment modules (X1-X4).

Full-scale shape assertions live in benchmarks/; these tests exercise the
modules' logic and the small-scale behaviour that must already hold.
"""

import pytest

from repro.experiments import (
    ablation_degree,
    ablation_offchip,
    ablation_ways,
    injection,
    tlb_sensitivity,
)


class TestAblationOffchip:
    @pytest.fixture(scope="class")
    def results(self):
        return ablation_offchip.run(25_000)

    def test_all_schemes_present(self, results):
        assert set(results.schemes) == {
            "stms", "domino", "misb", "triangel", "prophet"
        }

    def test_offchip_traffic_above_onchip_even_at_small_scale(self, results):
        assert results.geomean_metric("stms", "traffic") > results.geomean_metric(
            "triangel", "traffic"
        )

    def test_misb_between_generations(self, results):
        stms = results.geomean_metric("stms", "traffic")
        misb = results.geomean_metric("misb", "traffic")
        triangel = results.geomean_metric("triangel", "traffic")
        assert triangel < misb < stms

    def test_metadata_share_zero_for_onchip(self, results):
        assert ablation_offchip.metadata_traffic_share(results, "triangel") == 0.0
        assert ablation_offchip.metadata_traffic_share(results, "prophet") == 0.0
        assert ablation_offchip.metadata_traffic_share(results, "stms") > 0.2

    def test_render_contains_all_schemes(self, results):
        text = ablation_offchip.render(results)
        for scheme in results.schemes:
            assert scheme in text


class TestAblationDegree:
    @pytest.fixture(scope="class")
    def sweep(self):
        return ablation_degree.sweep(20_000, degrees=(1, 4))

    def test_sweep_structure(self, sweep):
        assert set(sweep) == {1, 4}
        labels = set(next(iter(sweep.values())))
        assert len(labels) == 7

    def test_geomean_by_degree(self, sweep):
        gm = ablation_degree.geomean_by_degree(sweep, "speedup")
        assert set(gm) == {1, 4}
        assert all(v > 0 for v in gm.values())

    def test_aggression_pays_even_small_scale(self, sweep):
        gm = ablation_degree.geomean_by_degree(sweep, "speedup")
        assert gm[4] >= gm[1]

    def test_render(self, sweep):
        text = ablation_degree.render(sweep)
        assert "degree=1" in text and "degree=4" in text
        assert "speedup" in text and "traffic" in text


class TestInjectionExperiment:
    @pytest.fixture(scope="class")
    def measured(self):
        return injection.measure(15_000)

    def test_covers_all_workloads(self, measured):
        assert len(measured) == 7

    def test_hint_buffer_bounded(self, measured):
        from repro.core.hints import HINT_BUFFER_ENTRIES

        for w in measured.values():
            assert w.hint_buffer.hinted_pcs <= HINT_BUFFER_ENTRIES

    def test_dynamic_overhead_zero_division_guard(self):
        from repro.binary.injection import InjectionReport

        w = injection.WorkloadInjection(
            "x", 0,
            InjectionReport("hint-buffer", 0, 0, 0, 5, 0),
            InjectionReport("x86-prefix", 0, 0, 0, 0, 0),
            InjectionReport("reserved-bits", 0, 0, 0, 0, 0),
        )
        assert w.dynamic_overhead(w.hint_buffer) == 0.0

    def test_report_renders(self, measured):
        assert "hint instrs" in injection.report(15_000)


class TestAblationWays:
    @pytest.fixture(scope="class")
    def sweep(self):
        return ablation_ways.sweep(20_000, ways=(0, 2, 8))

    def test_zero_ways_is_exactly_baseline(self, sweep):
        assert all(row[0] == 1.0 for row in sweep.values())

    def test_best_ways_keys(self, sweep):
        best = ablation_ways.best_ways(sweep)
        assert set(best) == set(sweep)
        assert all(b in (0, 2, 8) for b in best.values())

    def test_oracle_at_least_any_fixed(self, sweep):
        gm = ablation_ways.geomean_by_ways(sweep)
        assert ablation_ways.oracle_geomean(sweep) >= max(gm.values()) - 1e-12

    def test_render_has_oracle(self, sweep):
        text = ablation_ways.render(sweep)
        assert "oracle" in text and "ways=2" in text


class TestTLBSensitivity:
    def test_realistic_config_flags(self):
        config = tlb_sensitivity.realistic_vm_config()
        assert config.tlb_enabled
        assert not config.l1_pf_cross_page

    def test_compare_keys(self):
        out = tlb_sensitivity.compare(12_000)
        assert set(out) == {"ideal", "realistic"}
        # VM realism costs the baseline: realistic IPCs sit at or below
        # ideal for the same trace/scheme.
        ideal = out["ideal"].by_workload
        real = out["realistic"].by_workload
        for label in ideal:
            assert (
                real[label]["baseline"].ipc <= ideal[label]["baseline"].ipc
            )
