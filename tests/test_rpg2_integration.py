"""Integration tests for the RPG2 workflow (kernel id + tuning + run)."""

from repro.experiments.common import make_rpg2
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.base import (
    AddressSpace,
    QuasiSequentialComponent,
    TemporalChainComponent,
    build_trace,
)
from repro.workloads.crono import make_crono_trace
from repro.workloads.spec import make_spec_trace

import random


class TestRPG2OnSyntheticKernels:
    def quasi_trace(self, n=40_000):
        space = AddressSpace()
        comp = QuasiSequentialComponent(0x55, space, length=1 << 16, gap=4)
        return build_trace("quasi", "x", [comp], n, seed=3)

    def test_qualifies_and_speeds_up_quasi_sequential(self):
        cfg = default_config()
        trace = self.quasi_trace()
        base = run_simulation(trace, cfg, None, "baseline")
        pf = make_rpg2(trace, cfg, base)
        assert pf.kernels  # the scan qualifies
        res = run_simulation(trace, cfg, pf, "rpg2")
        assert res.speedup_over(base) > 1.02

    def test_no_kernels_on_pointer_chasing(self):
        """The Section 5.2 analysis: SPEC-style irregular workloads give
        RPG2 nothing to work with."""
        cfg = default_config()
        rng = random.Random(4)
        space = AddressSpace()
        comp = TemporalChainComponent(0x66, space, rng, n_chains=300,
                                      chain_len=48, repeat_prob=0.9)
        trace = build_trace("chase", "x", [comp], 30_000, seed=4)
        base = run_simulation(trace, cfg, None, "baseline")
        pf = make_rpg2(trace, cfg, base)
        assert not pf.kernels

    def test_spec_personas_mostly_unqualified(self):
        cfg = default_config()
        trace = make_spec_trace("mcf", "inp", 40_000)
        base = run_simulation(trace, cfg, None, "baseline")
        pf = make_rpg2(trace, cfg, base)
        res = run_simulation(trace, cfg, pf, "rpg2")
        # ~no gain on irregular SPEC (the Fig. 10 RPG2 bars).
        assert abs(res.speedup_over(base) - 1.0) < 0.05

    def test_tuned_distance_within_search_range(self):
        cfg = default_config()
        trace = self.quasi_trace()
        base = run_simulation(trace, cfg, None, "baseline")
        pf = make_rpg2(trace, cfg, base)
        for kernel in pf.kernels.values():
            assert 1 <= kernel.distance <= 64

    def test_graph_workload_gains(self):
        cfg = default_config()
        trace = make_crono_trace("pagerank_100000_100", 60_000)
        base = run_simulation(trace, cfg, None, "baseline")
        pf = make_rpg2(trace, cfg, base)
        res = run_simulation(trace, cfg, pf, "rpg2")
        assert res.speedup_over(base) >= 1.0
