"""Tests for the CLI and configuration module."""

import pytest

from repro.cli import EXPERIMENTS, main, run_experiment
from repro.sim.config import (
    LINE_SIZE,
    MAX_METADATA_ENTRIES,
    METADATA_ENTRIES_PER_LINE,
    CacheConfig,
    default_config,
    line_of,
)


class TestConfig:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_of(12345 * 64 + 7) == 12345

    def test_cache_geometry(self):
        c = CacheConfig("X", 64 * 1024, 4, 2, 16)
        assert c.n_lines == 1024
        assert c.n_sets == 256

    def test_max_metadata_entries_is_paper_value(self):
        # Section 5.10: 1 MB == 196,608 entries.
        assert MAX_METADATA_ENTRIES == 196_608
        assert MAX_METADATA_ENTRIES == (1 << 20) // LINE_SIZE * METADATA_ENTRIES_PER_LINE

    def test_config_immutable(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.mlp = 99  # frozen dataclass

    def test_variants_do_not_mutate_original(self):
        cfg = default_config()
        cfg2 = cfg.with_dram_channels(4)
        assert cfg.dram.channels == 1
        assert cfg2.dram.channels == 4
        cfg3 = cfg.with_l1_prefetcher("ipcp")
        assert cfg.l1_prefetcher == "stride"
        assert cfg3.l1_prefetcher == "ipcp"


class TestCLI:
    def test_list_covers_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in ["fig01", "fig10", "fig15", "fig19", "storage", "energy"]:
            assert fig in out

    def test_experiment_registry_complete(self):
        # Every evaluation artifact of the paper has a CLI entry
        # (extension studies may add more — see DESIGN.md X1-X5).
        expected = {f"fig{n:02d}" for n in (1, 6, 8, 10, 11, 12, 13, 14, 15,
                                            16, 17, 18, 19)}
        expected |= {"storage", "energy", "overhead"}
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_storage_runs_and_writes(self, tmp_path, capsys):
        assert main(["storage", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "storage.txt").exists()
        assert "48.00" in (tmp_path / "storage.txt").read_text()

    def test_run_experiment_records_override(self, tmp_path):
        text = run_experiment("fig08", 5_000, tmp_path)
        assert "T=1" in text
        assert (tmp_path / "fig08.txt").exists()
