"""Tests for the CLI and configuration module."""

import pytest

from repro.cli import main
from repro.experiments import REGISTRY
from repro.sim.config import (
    LINE_SIZE,
    MAX_METADATA_ENTRIES,
    METADATA_ENTRIES_PER_LINE,
    CacheConfig,
    apply_overrides,
    default_config,
    line_of,
    parse_override,
)


class TestConfig:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_of(12345 * 64 + 7) == 12345

    def test_cache_geometry(self):
        c = CacheConfig("X", 64 * 1024, 4, 2, 16)
        assert c.n_lines == 1024
        assert c.n_sets == 256

    def test_max_metadata_entries_is_paper_value(self):
        # Section 5.10: 1 MB == 196,608 entries.
        assert MAX_METADATA_ENTRIES == 196_608
        assert MAX_METADATA_ENTRIES == (1 << 20) // LINE_SIZE * METADATA_ENTRIES_PER_LINE

    def test_config_immutable(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.mlp = 99  # frozen dataclass

    def test_variants_do_not_mutate_original(self):
        cfg = default_config()
        cfg2 = cfg.with_dram_channels(4)
        assert cfg.dram.channels == 1
        assert cfg2.dram.channels == 4
        cfg3 = cfg.with_l1_prefetcher("ipcp")
        assert cfg.l1_prefetcher == "stride"
        assert cfg3.l1_prefetcher == "ipcp"


class TestOverrides:
    def test_top_level_override(self):
        cfg = apply_overrides(default_config(), {"mlp": 8})
        assert cfg.mlp == 8

    def test_nested_override(self):
        cfg = apply_overrides(default_config(), {"dram.channels": 2})
        assert cfg.dram.channels == 2
        assert default_config().dram.channels == 1

    def test_size_kb_alias(self):
        cfg = apply_overrides(default_config(), {"l3.size_kb": 4096})
        assert cfg.l3.size_bytes == 4096 * 1024

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config key"):
            apply_overrides(default_config(), {"l3.bogus": 1})
        with pytest.raises(ValueError, match="unknown config key"):
            apply_overrides(default_config(), {"nonsense": 1})

    def test_type_coercion_from_strings(self):
        cfg = apply_overrides(
            default_config(),
            {"mlp": "8", "tlb_enabled": "true", "l1_prefetcher": "ipcp",
             "dram.bytes_per_cycle_per_channel": "8.0"},
        )
        assert cfg.mlp == 8
        assert cfg.tlb_enabled is True
        assert cfg.l1_prefetcher == "ipcp"
        assert cfg.dram.bytes_per_cycle_per_channel == 8.0

    def test_parse_override(self):
        assert parse_override("l3.size_kb=2048") == ("l3.size_kb", 2048)
        assert parse_override("l1_prefetcher=ipcp") == ("l1_prefetcher", "ipcp")
        assert parse_override("tlb_enabled=true") == ("tlb_enabled", True)
        with pytest.raises(ValueError):
            parse_override("no_equals_sign")


class TestCLI:
    def test_list_covers_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in ["fig01", "fig10", "fig15", "fig19", "storage", "energy"]:
            assert fig in out

    def test_experiment_registry_complete(self):
        # Every evaluation artifact of the paper has a registry entry
        # (extension studies may add more — see DESIGN.md X1-X5).
        expected = {f"fig{n:02d}" for n in (1, 6, 8, 10, 11, 12, 13, 14, 15,
                                            16, 17, 18, 19)}
        expected |= {"storage", "energy", "overhead"}
        assert expected <= set(REGISTRY)

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_storage_runs_and_writes(self, tmp_path, capsys):
        assert main(["storage", "--out", str(tmp_path), "--no-cache"]) == 0
        assert (tmp_path / "storage.txt").exists()
        assert "48.00" in (tmp_path / "storage.txt").read_text()

    def test_records_override_and_out(self, tmp_path, capsys):
        assert main(["fig08", "--records", "5000", "--out", str(tmp_path),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "T=1" in out
        assert (tmp_path / "fig08.txt").exists()

    def test_static_experiment_rejects_records(self):
        with pytest.raises(SystemExit):
            main(["storage", "--records", "5"])
