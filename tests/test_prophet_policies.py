"""Unit tests for Prophet's analysis-side policies (Equations 1-5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.insertion import DEFAULT_EL_ACC, insertion_bit
from repro.core.learning import merge_accuracy, merge_counters
from repro.core.profiler import CounterSet
from repro.core.replacement import priority_level, replacement_state_bytes
from repro.core.resizing import allocated_ways, rounded_target_entries
from repro.sim.config import MAX_METADATA_ENTRIES, default_config


class TestEquation1Insertion:
    def test_threshold_boundary(self):
        assert insertion_bit(DEFAULT_EL_ACC)
        assert not insertion_bit(DEFAULT_EL_ACC - 1e-9)

    def test_extremes(self):
        assert insertion_bit(1.0)
        assert not insertion_bit(0.0)

    def test_custom_threshold(self):
        assert insertion_bit(0.06, el_acc=0.05)
        assert not insertion_bit(0.04, el_acc=0.05)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            insertion_bit(0.5, el_acc=1.5)


class TestEquation2Priority:
    def test_n2_buckets(self):
        # n=2: levels split [0,1) into quarters.
        assert priority_level(0.20, 2) == 0
        assert priority_level(0.30, 2) == 1
        assert priority_level(0.55, 2) == 2
        assert priority_level(0.80, 2) == 3

    def test_accuracy_one_is_top_level(self):
        assert priority_level(1.0, 2) == 3
        assert priority_level(1.0, 3) == 7

    def test_below_el_acc_is_floor(self):
        assert priority_level(0.01, 2) == 0

    def test_n_bits_scaling(self):
        assert priority_level(0.6, 1) == 1
        assert priority_level(0.6, 3) == 4

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            priority_level(0.5, 0)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(1, 4))
    @settings(max_examples=200, deadline=None)
    def test_level_always_in_range(self, acc, bits):
        level = priority_level(acc, bits)
        assert 0 <= level < (1 << bits)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_accuracy(self, a, b):
        lo, hi = sorted((a, b))
        assert priority_level(lo, 2) <= priority_level(hi, 2)

    def test_replacement_state_is_48kb_at_paper_scale(self):
        assert replacement_state_bytes(MAX_METADATA_ENTRIES, 2) == 48 * 1024


class TestEquation3Resizing:
    def test_rounding_to_power_of_two(self):
        assert rounded_target_entries(1000) == 1024
        assert rounded_target_entries(1024) == 1024
        assert rounded_target_entries(1025) == 2048

    def test_cap_at_1mb_table(self):
        assert rounded_target_entries(10**9) == MAX_METADATA_ENTRIES

    def test_zero_demand_disables(self):
        cfg = default_config()
        assert allocated_ways(0, cfg) == 0

    def test_tiny_demand_disables(self):
        cfg = default_config()
        # Far below half a way's worth of entries.
        assert allocated_ways(100, cfg) == 0

    def test_full_demand_uses_max_ways(self):
        cfg = default_config()
        assert allocated_ways(MAX_METADATA_ENTRIES, cfg) == cfg.l3.assoc // 2

    def test_mid_demand(self):
        cfg = default_config()
        per_way = cfg.metadata_entries_per_llc_way
        ways = allocated_ways(per_way + 1, cfg)
        assert ways == 2  # rounds up to two ways

    @given(st.integers(0, 10**7))
    @settings(max_examples=200, deadline=None)
    def test_ways_bounded(self, peak):
        cfg = default_config()
        ways = allocated_ways(peak, cfg)
        assert 0 <= ways <= cfg.l3.assoc // 2


class TestEquation4and5Learning:
    def test_same_behaviour_keeps_bucket(self):
        # Fig. 7 Load A: both inputs report ~the same accuracy.
        merged = merge_accuracy(0.8, 0.82, loops=1, loop_cap=4)
        assert priority_level(merged, 2) == priority_level(0.8, 2)

    def test_new_pc_takes_new_value(self):
        old = CounterSet(accuracy={1: 0.9}, loops=1)
        new = CounterSet(accuracy={2: 0.3}, loops=1)
        merged = merge_counters(old, new)
        assert merged.accuracy[2] == 0.3  # Load B/C case
        assert merged.accuracy[1] == 0.9

    def test_conflicting_pc_moves_toward_new(self):
        # Fig. 7 Load E: same PC, different behaviour.
        old = CounterSet(accuracy={1: 0.9}, loops=1)
        new = CounterSet(accuracy={1: 0.1}, loops=1)
        merged = merge_counters(old, new)
        assert 0.1 < merged.accuracy[1] < 0.9

    def test_dampening_grows_with_loops(self):
        late = merge_accuracy(0.9, 0.1, loops=3, loop_cap=4)
        early = merge_accuracy(0.9, 0.1, loops=1, loop_cap=4)
        assert abs(late - 0.9) < abs(early - 0.9)

    def test_loop_cap_bounds_dampening(self):
        capped = merge_accuracy(0.9, 0.1, loops=100, loop_cap=4)
        at_cap = merge_accuracy(0.9, 0.1, loops=3, loop_cap=4)
        assert capped == pytest.approx(at_cap)

    def test_peak_entries_merge_is_max(self):
        old = CounterSet(peak_entries=100, loops=1)
        new = CounterSet(peak_entries=50, loops=1)
        assert merge_counters(old, new).peak_entries == 100  # Equation 5

    def test_loops_increment(self):
        old = CounterSet(loops=2)
        assert merge_counters(old, CounterSet()).loops == 3

    def test_invalid_loop_cap(self):
        with pytest.raises(ValueError):
            merge_counters(CounterSet(), CounterSet(), loop_cap=0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(1, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_merged_accuracy_stays_in_range(self, o, n, loops):
        merged = merge_accuracy(o, n, loops, loop_cap=4)
        assert 0.0 <= merged <= 1.0
        assert min(o, n) <= merged <= max(o, n)

    @given(st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_repeated_learning_converges(self, rounds):
        """Property: repeatedly learning the same input converges the
        maintained accuracy toward that input's value."""
        counters = CounterSet(accuracy={1: 0.9}, loops=1)
        target = CounterSet(accuracy={1: 0.2}, loops=1)
        prev_gap = abs(counters.accuracy[1] - 0.2)
        for _ in range(rounds):
            counters = merge_counters(counters, target)
            gap = abs(counters.accuracy[1] - 0.2)
            assert gap <= prev_gap + 1e-12
            prev_gap = gap
