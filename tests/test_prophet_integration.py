"""Integration tests for the Prophet prefetcher and the full pipeline."""

import pytest

from repro.core.analysis import AnalysisParams, analyze
from repro.core.hints import CSRHints, HintSet, PCHint
from repro.core.pipeline import OptimizedBinary, run_prophet
from repro.core.profiler import CounterSet, profile, simplified_prefetcher
from repro.core.prophet import ProphetFeatures, ProphetPrefetcher
from repro.prefetchers.base import L2AccessInfo
from repro.sim.config import MAX_METADATA_ENTRIES, default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


def access(pc, line):
    return L2AccessInfo(pc=pc, line=line, cycle=0.0, l2_hit=False)


def hintset(pc_hints, ways=4):
    return HintSet(pc_hints=pc_hints, csr=CSRHints(metadata_ways=ways))


class TestSimplifiedPrefetcher:
    def test_matches_section_3_2(self):
        cfg = default_config()
        pf = simplified_prefetcher(cfg)
        assert pf.degree == 1
        assert pf.resize_enabled is False
        assert pf.table.capacity == MAX_METADATA_ENTRIES  # the 1 MB table
        assert pf.track_inserts


class TestProfiler:
    def test_profile_produces_counters(self):
        cfg = default_config()
        trace = make_spec_trace("sphinx3", "an4", 30_000)
        counters = profile(trace, cfg)
        assert counters.n_pcs > 0
        assert all(0.0 <= a <= 1.0 for a in counters.accuracy.values())
        assert counters.peak_entries > 0
        assert counters.loops == 1

    def test_high_and_low_accuracy_pcs_separate(self):
        cfg = default_config()
        trace = make_spec_trace("mcf", "inp", 60_000)
        counters = profile(trace, cfg)
        accs = sorted(counters.accuracy.values())
        assert accs[0] < 0.15 < accs[-1]  # churn vs hot chains


class TestProphetInsertion:
    def test_hinted_zero_bit_blocks_insert_and_prefetch(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=False, priority=0)})
        pf = ProphetPrefetcher(cfg, hints)
        pf.observe(access(9, 1))
        reqs = pf.observe(access(9, 2))
        assert reqs == []
        assert pf.table.live_entries == 0

    def test_hinted_one_bit_always_inserts(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=True, priority=3)})
        pf = ProphetPrefetcher(cfg, hints)
        # Zero the runtime confidence: Prophet must override it.
        entry = pf._trainer_entry(9)
        entry.pattern_conf = 0
        pf.observe(access(9, 1))
        pf.observe(access(9, 2))
        assert pf.table.live_entries == 1
        assert pf.table.priority_of(1) == 3

    def test_unhinted_pc_uses_runtime_policy(self):
        cfg = default_config()
        pf = ProphetPrefetcher(cfg, hintset({}))
        entry = pf._trainer_entry(7)
        entry.pattern_conf = 0  # runtime policy blocks
        pf.observe(access(7, 1))
        pf.observe(access(7, 2))
        assert pf.table.live_entries == 0

    def test_insertion_feature_off_falls_back(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=False, priority=0)})
        pf = ProphetPrefetcher(cfg, hints, ProphetFeatures(insertion=False))
        pf.observe(access(9, 1))
        pf.observe(access(9, 2))
        assert pf.table.live_entries == 1  # runtime policy allowed it


class TestProphetResizing:
    def test_csr_sets_initial_ways(self):
        cfg = default_config()
        pf = ProphetPrefetcher(cfg, hintset({}, ways=3))
        assert pf.initial_ways == 3
        assert pf.desired_metadata_ways(3) is None  # fixed at start

    def test_zero_ways_disables_temporal_prefetching(self):
        cfg = default_config()
        pf = ProphetPrefetcher(cfg, hintset({}, ways=0))
        pf.observe(access(1, 1))
        reqs = pf.observe(access(1, 2))
        assert reqs == []
        assert pf.table.live_entries == 0

    def test_resizing_off_uses_runtime_dueller(self):
        cfg = default_config()
        pf = ProphetPrefetcher(cfg, hintset({}, ways=3),
                               ProphetFeatures(resizing=False))
        pf._window_issued = 1000
        pf._window_useful = 10
        assert pf.desired_metadata_ways(4) == 3  # dueller active


class TestProphetMVB:
    def test_displaced_multi_target_served_from_mvb(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=True, priority=3)})
        pf = ProphetPrefetcher(cfg, hints)
        # Two alternating successors of line 1: B=2 then C=3.
        for succ in (2, 3):
            pf.observe(access(9, 1))
            pf.observe(access(9, succ))
        # Table now holds 1 -> 3; MVB holds the displaced 1 -> 2.
        reqs = pf.observe(access(9, 1))
        lines = {r.line for r in reqs}
        assert 3 in lines
        assert 2 in lines  # the MVB's alternate target

    def test_mvb_disabled_loses_alternate(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=True, priority=3)})
        pf = ProphetPrefetcher(cfg, hints, ProphetFeatures(mvb=False))
        for succ in (2, 3):
            pf.observe(access(9, 1))
            pf.observe(access(9, succ))
        reqs = pf.observe(access(9, 1))
        lines = {r.line for r in reqs}
        assert 3 in lines  # the table's (latest) target
        assert 2 not in lines  # the displaced target is gone without MVB

    def test_low_priority_victims_skip_mvb(self):
        cfg = default_config()
        hints = hintset({9: PCHint(insert=True, priority=0)})
        pf = ProphetPrefetcher(cfg, hints)
        for succ in (2, 3):
            pf.observe(access(9, 1))
            pf.observe(access(9, succ))
        assert pf.mvb.live_entries == 0


class TestPipeline:
    def test_end_to_end_beats_baseline(self):
        cfg = default_config()
        trace = make_spec_trace("xalancbmk", "ref", 60_000)
        base = run_simulation(trace, cfg, None, "baseline")
        res = run_prophet(trace, cfg)
        assert res.speedup_over(base) > 1.0

    def test_optimized_binary_learn_requires_same_app(self):
        cfg = default_config()
        binary = OptimizedBinary.from_profile(
            make_spec_trace("gcc", "166", 10_000), cfg
        )
        with pytest.raises(ValueError):
            binary.learn(make_spec_trace("mcf", "inp", 10_000), cfg)

    def test_learning_increments_loops_and_merges(self):
        cfg = default_config()
        binary = OptimizedBinary.from_profile(
            make_spec_trace("gcc", "166", 20_000), cfg
        )
        learned = binary.learn(make_spec_trace("gcc", "expr", 20_000), cfg)
        assert learned.counters.loops == binary.counters.loops + 1
        assert learned.counters.n_pcs >= binary.counters.n_pcs

    def test_analysis_consistent_with_counters(self):
        cfg = default_config()
        counters = CounterSet(
            accuracy={1: 0.9, 2: 0.05}, miss_counts={1: 50, 2: 50},
            peak_entries=60_000,
        )
        hints = analyze(counters, cfg, AnalysisParams())
        assert hints.pc_hints[1].insert and hints.pc_hints[1].priority == 3
        assert not hints.pc_hints[2].insert
        assert hints.csr.metadata_ways >= 1

    def test_storage_overhead_reported(self):
        cfg = default_config()
        pf = ProphetPrefetcher(cfg, hintset({}))
        overhead = pf.storage_overhead_bytes()
        assert set(overhead) == {"replacement_state", "hint_buffer", "mvb"}
        assert overhead["mvb"] == 352_256
