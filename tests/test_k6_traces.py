"""Tests for DRAMSim2-style k6 trace import/export."""

import pytest

from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace
from repro.workloads.tracefile import (
    K6_DEFAULT_PC,
    load_k6_trace,
    save_k6_trace,
)


class TestK6Load:
    def test_parses_hex_addresses_and_commands(self, tmp_path):
        path = tmp_path / "k6_sample.trc"
        path.write_text(
            "# comment line\n"
            "0x10000 P_MEM_RD 10\n"
            "0x10040 P_MEM_RD 20\n"
            "0x10080 P_MEM_WR 30\n"
        )
        trace = load_k6_trace(path)
        assert trace.lines == [0x10000 >> 6, 0x10040 >> 6, 0x10080 >> 6]
        assert trace.pcs == [K6_DEFAULT_PC] * 3
        assert trace.name == "k6_sample"
        assert trace.input_name == "k6"

    def test_cycle_deltas_become_gaps(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "0x40 P_MEM_RD 5\n0x80 P_MEM_RD 6\n0xc0 P_MEM_RD 16\n"
        )
        trace = load_k6_trace(path)
        # First gap is the lead-in; back-to-back cycles give gap 0.
        assert trace.gaps == [5, 0, 9]

    def test_decimal_addresses(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("64 P_MEM_RD 1\n128 P_MEM_RD 2\n")
        trace = load_k6_trace(path)
        assert trace.lines == [1, 2]

    def test_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("0x40 P_MEM_RD\n")
        with pytest.raises(ValueError, match="expected"):
            load_k6_trace(path)

    def test_rejects_unknown_command(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("0x40 P_MEM_XX 1\n")
        with pytest.raises(ValueError, match="unknown k6 command"):
            load_k6_trace(path)

    def test_rejects_backwards_cycles(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("0x40 P_MEM_RD 10\n0x80 P_MEM_RD 4\n")
        with pytest.raises(ValueError, match="backwards"):
            load_k6_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no k6 records"):
            load_k6_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_k6_trace(tmp_path / "nope.trc")


class TestK6RoundTrip:
    def test_persona_round_trips_lines_and_gaps(self, tmp_path):
        trace = make_spec_trace("mcf", None, 4000)
        path = save_k6_trace(trace, tmp_path / "mcf.trc")
        back = load_k6_trace(path, name=trace.name)
        assert back.lines == trace.lines
        assert back.gaps == trace.gaps
        assert len(back) == len(trace)

    def test_round_trip_is_stable(self, tmp_path):
        trace = make_spec_trace("omnetpp", None, 2000)
        once = load_k6_trace(save_k6_trace(trace, tmp_path / "a.trc"))
        twice = load_k6_trace(save_k6_trace(once, tmp_path / "b.trc"))
        assert twice.lines == once.lines
        assert twice.gaps == once.gaps

    def test_loaded_trace_simulates(self, tmp_path):
        trace = make_spec_trace("mcf", None, 4000)
        back = load_k6_trace(save_k6_trace(trace, tmp_path / "m.trc"))
        result = run_simulation(back, default_config(), None, "baseline")
        assert result.instructions > 0
        assert result.cycles > 0
