"""End-to-end shape tests: small-scale versions of the paper's claims.

These are the library's acceptance tests — each encodes one mechanism's
observable effect at a size small enough for the unit-test suite (the
full-size versions live in benchmarks/).
"""

import pytest

from repro.core.pipeline import OptimizedBinary
from repro.core.prophet import ProphetFeatures
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace

N = 80_000


@pytest.fixture(scope="module")
def cfg():
    return default_config()


def run_pair(app, cfg, features=ProphetFeatures(), n=N):
    trace = make_spec_trace(app, None, n)
    base = run_simulation(trace, cfg, None, "baseline")
    binary = OptimizedBinary.from_profile(trace, cfg)
    res = run_simulation(trace, cfg, binary.prefetcher(cfg, features), "prophet")
    return trace, base, binary, res


class TestProphetBeatsBaseline:
    @pytest.mark.parametrize("app", ["mcf", "omnetpp", "xalancbmk"])
    def test_speedup_on_temporal_workloads(self, cfg, app):
        _trace, base, _binary, res = run_pair(app, cfg)
        assert res.speedup_over(base) > 1.03

    def test_prophet_accuracy_high(self, cfg):
        _trace, _base, _binary, res = run_pair("xalancbmk", cfg)
        assert res.accuracy > 0.7


class TestProphetVsTriangelOnBursts:
    def test_omnetpp_burst_pattern_favors_prophet(self, cfg):
        """The Fig. 1 mechanism end to end: interleaved useful/useless
        bursts crash Triangel's PatternConf; Prophet's whole-program
        insertion bit keeps covering the useful phases."""
        trace = make_spec_trace("omnetpp", None, N)
        base = run_simulation(trace, cfg, None, "baseline")
        tg = run_simulation(trace, cfg, TriangelPrefetcher(cfg), "triangel")
        binary = OptimizedBinary.from_profile(trace, cfg)
        pr = run_simulation(trace, cfg, binary.prefetcher(cfg), "prophet")
        assert pr.coverage_over(base) > tg.coverage_over(base)


class TestResizingShape:
    def test_small_footprint_gets_small_table(self, cfg):
        """sphinx3's metadata fits well under 1 MB: Prophet allocates few
        ways, mcf-style heavy workloads allocate more (Section 2.1.3)."""
        _t1, _b1, small, _r1 = run_pair("sphinx3", cfg)
        _t2, _b2, large, _r2 = run_pair("mcf", cfg)
        assert small.hints.csr.metadata_ways < large.hints.csr.metadata_ways

    def test_hint_buffer_respects_capacity(self, cfg):
        _trace, _base, binary, _res = run_pair("gcc", cfg)
        pf = binary.prefetcher(cfg)
        assert len(pf.hint_buffer) <= 128


class TestTrafficShape:
    def test_prophet_traffic_overhead_bounded(self, cfg):
        _trace, base, _binary, res = run_pair("xalancbmk", cfg)
        assert res.traffic_over(base) < 1.5

    def test_prefetching_does_not_explode_writebacks(self, cfg):
        _trace, base, _binary, res = run_pair("xalancbmk", cfg)
        assert res.dram_writes <= base.dram_writes * 1.5 + 100


class TestMVBShape:
    def test_mvb_helps_branchy_workload(self, cfg):
        """soplex's multi-target chains: MVB on vs off (Fig. 19's +MVB)."""
        trace = make_spec_trace("soplex", "pds-50", N)
        base = run_simulation(trace, cfg, None, "baseline")
        binary = OptimizedBinary.from_profile(trace, cfg)
        with_mvb = run_simulation(
            trace, cfg, binary.prefetcher(cfg, ProphetFeatures(mvb=True)), "m1"
        )
        without = run_simulation(
            trace, cfg, binary.prefetcher(cfg, ProphetFeatures(mvb=False)), "m0"
        )
        assert with_mvb.coverage_over(base) >= without.coverage_over(base) - 0.01
        pf = binary.prefetcher(cfg, ProphetFeatures(mvb=True))
        run_simulation(trace, cfg, pf, "probe")
        assert pf.mvb.inserts > 0  # the buffer is genuinely exercised
