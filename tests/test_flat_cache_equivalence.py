"""Flat-array cache stack vs the preserved reference oracles.

The shipping :class:`repro.cache.cache.Cache`, :class:`repro.memory.tlb.TLB`,
and :class:`repro.cache.hierarchy.Hierarchy` (fused fill-spill kernel) must
be **bit-identical** in behaviour to the slot-record / OrderedDict /
call-per-level implementations preserved in :mod:`repro.cache.reference`.
Randomized op and access streams drive both sides in lockstep and compare
every return value plus the full statistics surface; whole-``SimResult``
equality pins the stack end to end through both engine loops.
"""

import dataclasses
import random

import pytest

from repro import _accel
from repro.cache.cache import PF_L1, PF_L2, Cache
from repro.cache.hierarchy import Hierarchy
from repro.cache.reference import (
    CacheReference,
    HierarchyReference,
    TLBReference,
)
from repro.core.pipeline import OptimizedBinary
from repro.memory.tlb import TLB, TLBConfig
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.inputs import make_trace


def cache_pair(assoc=4, sets=8, replacement="plru"):
    size = 64 * assoc * sets
    return (
        Cache("F", size, assoc, 2, replacement),
        CacheReference("R", size, assoc, 2, replacement),
    )


def assert_same_cache_state(flat: Cache, ref: CacheReference, line_space):
    assert dataclasses.asdict(flat.stats) == dataclasses.asdict(ref.stats)
    assert sorted(flat.resident_lines()) == sorted(ref.resident_lines())
    assert flat.occupancy() == ref.occupancy()
    for line in line_space:
        way_f, way_r = flat.probe(line), ref.probe(line)
        assert way_f == way_r, line
        if way_f is not None:
            assert flat.ready_cycle(line, way_f) == ref.ready_cycle(line, way_r)
            assert flat.trigger_pc_of(line, way_f) == ref.trigger_pc_of(line, way_r)
            assert flat.pf_source_of(line, way_f) == ref.pf_source_of(line, way_r)
            assert flat.was_prefetched(line, way_f) == ref.was_prefetched(
                line, way_r
            )


class TestCacheOpEquivalence:
    """Randomized per-op streams: every return value must match."""

    @pytest.mark.parametrize("replacement", ["plru", "srrip", "lru"])
    @pytest.mark.parametrize("seed", [11, 42])
    def test_randomized_ops(self, replacement, seed):
        rng = random.Random(seed)
        flat, ref = cache_pair(replacement=replacement)
        lines = range(96)  # 8 sets -> 12-way aliasing pressure
        for step in range(4000):
            op = rng.randrange(8)
            line = rng.randrange(96)
            if op <= 2:
                w = rng.random() < 0.3
                assert flat.demand_lookup(line, w) == ref.demand_lookup(line, w), step
            elif op == 3:
                ready = round(rng.uniform(0, 500), 3)
                pf = rng.random() < 0.5
                src = rng.choice([PF_L1, PF_L2])
                trig = rng.randrange(1 << 20)
                dirty = rng.random() < 0.3
                assert flat.fill(line, ready, pf, trig, dirty, src) == ref.fill(
                    line, ready, pf, trig, dirty, src
                ), step
            elif op == 4:
                ready = round(rng.uniform(0, 500), 3)
                pf = rng.random() < 0.5
                src = rng.choice([PF_L1, PF_L2])
                trig = rng.randrange(1 << 20)
                dirty = rng.random() < 0.3
                assert flat.fill_victim(
                    line, ready, pf, trig, dirty, src
                ) == ref.fill_victim(line, ready, pf, trig, dirty, src), step
            elif op == 5:
                ready = round(rng.uniform(0, 500), 3)
                flat.fill_clean(line, ready)
                ref.fill_clean(line, ready)
            elif op == 6:
                assert flat.invalidate(line) == ref.invalidate(line), step
            else:
                way = flat.probe(line)
                assert way == ref.probe(line), step
                if way is not None:
                    w = rng.random() < 0.3
                    assert flat.on_demand_hit(line, way, w) == ref.on_demand_hit(
                        line, way, w
                    ), step
        assert_same_cache_state(flat, ref, lines)

    @pytest.mark.parametrize("use_numpy", [False, True])
    def test_partition_resize_stream(self, use_numpy):
        """Shrink/grow the data-way split mid-stream (batch tag scan)."""
        if use_numpy and _accel.get_numpy() is None:
            _accel.set_numpy_enabled(True)
            if _accel.get_numpy() is None:  # pragma: no cover - no numpy
                _accel.set_numpy_enabled(None)
                pytest.skip("numpy unavailable")
        try:
            if use_numpy:
                _accel.set_numpy_enabled(True)
            rng = random.Random(7)
            flat, ref = cache_pair(assoc=8, sets=4, replacement="srrip")
            for step in range(2500):
                op = rng.randrange(10)
                line = rng.randrange(64)
                if op == 0:
                    # >= 1: filling a zero-way cache raises in both
                    # implementations (the hierarchy never does it).
                    ways = rng.randrange(1, 9)
                    flat.set_data_ways(ways)
                    ref.set_data_ways(ways)
                    assert flat.data_ways == ref.data_ways
                    assert flat.capacity_lines == ref.capacity_lines
                elif op <= 4:
                    dirty = rng.random() < 0.5
                    assert flat.fill_victim(
                        line, float(step), False, -1, dirty
                    ) == ref.fill_victim(line, float(step), False, -1, dirty)
                else:
                    w = rng.random() < 0.4
                    assert flat.demand_lookup(line, w) == ref.demand_lookup(line, w)
            assert_same_cache_state(flat, ref, range(64))
        finally:
            _accel.set_numpy_enabled(None)

    def test_map_compat_view(self):
        """The ``_map`` property mirrors the reference per-set dicts."""
        flat, ref = cache_pair()
        for line in range(40):
            flat.fill(line)
            ref.fill(line)
        assert [dict(m) for m in flat._map] == [dict(m) for m in ref._map]


class TestTLBEquivalence:
    def test_randomized_translation_stream(self):
        cfg = TLBConfig(entries=8, walk_latency=30)
        flat, ref = TLB(cfg), TLBReference(cfg)
        rng = random.Random(3)
        line = 0
        for step in range(6000):
            # Mixed same-page runs (the fast path) and page jumps that
            # overflow the 8 entries (LRU eviction pressure).
            if rng.random() < 0.6:
                line += rng.randrange(4)  # stay on / near the same page
            else:
                line = rng.randrange(40) * 64  # jump across 40 pages
            assert flat.access(line) == ref.access(line), step
            assert flat.contains(line) == ref.contains(line)
        assert len(flat) == len(ref)
        assert flat.stats.hits == ref.stats.hits
        assert flat.stats.misses == ref.stats.misses
        for page_line in range(0, 40 * 64, 64):
            assert flat.contains(page_line) == ref.contains(page_line)


def drive_pair(flat, ref, n=4000, seed=17, write_frac=0.25, pointer_frac=0.5):
    """Lockstep demand streams; asserts per-access AccessResult equality."""
    rng = random.Random(seed)
    cycle = 0.0
    line = 0
    for step in range(n):
        pc = rng.randrange(48)
        if rng.random() < pointer_frac:
            line = (line * 7 + pc * 13 + 5) % 6000  # chase-y, re-visiting
        else:
            line = rng.randrange(6000)
        w = rng.random() < write_frac
        a = flat.demand_access(pc, line, cycle, w)
        b = ref.demand_access(pc, line, cycle, w)
        assert a == b, step
        cycle += 1.0 + a.latency * 0.25


def assert_same_hierarchy_state(flat, ref):
    for level in ("l1d", "l2", "l3"):
        f, r = getattr(flat, level), getattr(ref, level)
        assert dataclasses.asdict(f.stats) == dataclasses.asdict(r.stats), level
        assert sorted(f.resident_lines()) == sorted(r.resident_lines()), level
    assert dataclasses.asdict(flat.dram.stats) == dataclasses.asdict(ref.dram.stats)
    assert flat.l2_mshr.merges == ref.l2_mshr.merges
    assert flat.l2_mshr.rejects == ref.l2_mshr.rejects
    assert flat.demand_accesses == ref.demand_accesses
    assert flat.l2_demand_misses == ref.l2_demand_misses
    for side in ("l1_pf_stats", "l2_pf_stats"):
        f, r = getattr(flat, side), getattr(ref, side)
        assert f.issued == r.issued and f.useful == r.useful, side
        assert dict(f.issued_by_pc) == dict(r.issued_by_pc), side
        assert dict(f.useful_by_pc) == dict(r.useful_by_pc), side


class TestHierarchyEquivalence:
    def test_baseline_with_stride_l1(self):
        config = default_config()
        flat = Hierarchy(config, None, StridePrefetcher(degree=4))
        ref = HierarchyReference(config, None, StridePrefetcher(degree=4))
        drive_pair(flat, ref)
        assert_same_hierarchy_state(flat, ref)

    def test_triangel_with_dirty_spill_chains(self):
        """Writes make L2 victims dirty -> L3 spills -> DRAM writebacks.

        Shrunken caches so the working set overflows the L3 and dirty
        spill victims actually reach DRAM.
        """
        base = default_config()
        config = dataclasses.replace(
            base,
            l1d=dataclasses.replace(base.l1d, size_bytes=8 * 1024),
            l2=dataclasses.replace(base.l2, size_bytes=16 * 1024),
            l3=dataclasses.replace(base.l3, size_bytes=64 * 1024),
        )
        flat = Hierarchy(config, TriangelPrefetcher(config), StridePrefetcher())
        ref = HierarchyReference(
            config, TriangelPrefetcher(config), StridePrefetcher()
        )
        drive_pair(flat, ref, n=5000, write_frac=0.5)
        assert flat.dram.stats.writes > 0  # the chain actually exercised
        assert_same_hierarchy_state(flat, ref)

    def test_mshr_saturation(self):
        """A 2-entry MSHR file forces merges, rejects, and queueing."""
        config = dataclasses.replace(
            default_config(),
            l2=dataclasses.replace(default_config().l2, mshrs=2),
        )
        flat = Hierarchy(config, TriangelPrefetcher(config), StridePrefetcher())
        ref = HierarchyReference(
            config, TriangelPrefetcher(config), StridePrefetcher()
        )
        drive_pair(flat, ref, n=4000, seed=23)
        assert ref.l2_mshr.merges + ref.l2_mshr.rejects > 0
        assert_same_hierarchy_state(flat, ref)

    def test_tlb_same_page_fast_path(self):
        config = default_config().with_tlb(entries=8, walk_latency=30)
        flat = Hierarchy(config, None, StridePrefetcher())
        ref = HierarchyReference(config, None, StridePrefetcher())
        drive_pair(flat, ref, n=4000, seed=5, pointer_frac=0.2)
        assert flat.tlb.stats.misses > 0
        assert flat.tlb.stats.hits == ref.tlb.stats.hits
        assert flat.tlb.stats.misses == ref.tlb.stats.misses
        assert_same_hierarchy_state(flat, ref)

    def test_resize_rebinds_kernel_mid_stream(self):
        """set_metadata_ways mid-stream: the kernel must be rebound over
        the new L3 way split (invariant 9)."""
        config = default_config()
        flat = Hierarchy(config, None, StridePrefetcher())
        ref = HierarchyReference(config, None, StridePrefetcher())
        drive_pair(flat, ref, n=1500, seed=2)
        for ways in (4, 8, 2, 0):
            flat.set_metadata_ways(ways)
            ref.set_metadata_ways(ways)
            drive_pair(flat, ref, n=1500, seed=100 + ways)
        assert_same_hierarchy_state(flat, ref)


class TestSimResultEquivalence:
    """Whole-run equality through run_simulation, flat vs reference."""

    @pytest.mark.parametrize("label", ["mcf_inp", "omnetpp_omnetpp"])
    def test_baseline(self, label):
        config = default_config()
        trace = make_trace(label, 12000)
        flat = run_simulation(trace, config, None, "baseline")
        ref = run_simulation(
            trace, config, None, "baseline", hierarchy_cls=HierarchyReference
        )
        assert dataclasses.asdict(flat) == dataclasses.asdict(ref)

    def test_prophet(self):
        config = default_config()
        trace = make_trace("mcf_inp", 12000)
        binary = OptimizedBinary.from_profile(trace, config)
        flat = run_simulation(trace, config, binary.prefetcher(config), "prophet")
        ref = run_simulation(
            trace, config, binary.prefetcher(config), "prophet",
            hierarchy_cls=HierarchyReference,
        )
        assert dataclasses.asdict(flat) == dataclasses.asdict(ref)

    def test_numpy_smoke_identical(self):
        """REPRO_NUMPY only vectorizes bulk scans; results are identical."""
        if not _accel.numpy_capability().ok:  # pragma: no cover - no numpy
            pytest.skip("numpy unavailable")
        config = default_config()
        trace = make_trace("mcf_inp", 8000)
        base = run_simulation(trace, config, TriangelPrefetcher(config), "triangel")
        try:
            _accel.set_numpy_enabled(True)
            accel = run_simulation(
                trace, config, TriangelPrefetcher(config), "triangel"
            )
        finally:
            _accel.set_numpy_enabled(None)
        assert dataclasses.asdict(base) == dataclasses.asdict(accel)
