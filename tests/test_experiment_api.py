"""Tests for the first-class Experiment API: registry, facade, structured
output.

Covers the contract the CLI and library clients rely on:

- every experiment module registers exactly once and ``cli list`` is
  registry-driven;
- ``repro.api.run`` returns structured results whose JSON round-trips
  (suite payloads reconstruct ``SuiteResults``);
- workload/scheme selection and dotted-path config overrides apply (and
  invalid selections/keys are rejected);
- the shared SPEC memo keys on config *content*, not a caller-supplied
  tag.
"""

import json
import pkgutil

import pytest

import repro.api as api
import repro.experiments
from repro import cli, viz
from repro.experiments import REGISTRY, get_experiment, register_experiment
from repro.experiments.common import SuiteResults
from repro.sim.config import config_digest, default_config


class TestRegistryCompleteness:
    def test_every_module_registers_exactly_once(self):
        skip = {"common", "registry"}
        modules = [
            name
            for _, name, _ in pkgutil.iter_modules(repro.experiments.__path__)
            if name not in skip
        ]
        by_module = {}
        for exp in REGISTRY.values():
            by_module.setdefault(exp.module.rsplit(".", 1)[-1], []).append(exp.name)
        for module in modules:
            assert by_module.get(module), f"{module} registers no experiment"
            assert len(by_module[module]) == 1, (
                f"{module} registers {by_module[module]}"
            )
        assert len(REGISTRY) == len(modules)

    def test_cli_list_matches_registry(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out
        assert len(out.strip().splitlines()) == len(REGISTRY)

    def test_duplicate_registration_from_other_module_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment(
                "fig10", description="dup", records=1, render=str
            )(lambda req: None)

    def test_get_experiment_error_lists_options(self):
        with pytest.raises(ValueError, match="fig10"):
            get_experiment("not_an_experiment")

    def test_static_experiments_use_none_not_zero(self):
        storage = get_experiment("storage")
        assert storage.records is None
        assert storage.static
        for exp in REGISTRY.values():
            assert exp.records != 0, f"{exp.name} uses the 0-records sentinel"


class TestFacade:
    def test_static_run_and_json_round_trip(self):
        result = api.run("storage")
        assert result.records is None
        assert "48.00" in result.text()
        again = api.ExperimentResult.from_json(result.to_json())
        assert again.payload == result.experiment.payload_to_dict(result.payload)
        assert again.name == "storage"

    def test_static_rejects_records(self):
        with pytest.raises(ValueError, match="static"):
            api.run("storage", records=5)

    def test_selection_rejected_where_unsupported(self):
        with pytest.raises(ValueError, match="workloads"):
            api.run("fig13", workloads=["mcf_inp"])
        with pytest.raises(ValueError, match="schemes"):
            api.run("fig08", schemes=["prophet"])
        with pytest.raises(ValueError, match="overrides"):
            api.run("fig01", overrides={"mlp": 8})

    def test_unknown_workload_and_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            api.run("fig10", records=2000, workloads=["not_a_workload"])
        with pytest.raises(ValueError, match="unknown scheme"):
            api.run("fig10", records=2000, workloads=["mcf_inp"],
                    schemes=["not_a_scheme"])

    def test_suite_selection_and_round_trip(self):
        result = api.run(
            "fig10", records=6000, workloads=["sphinx3_an4"],
            schemes=["triangel"], overrides={"dram.channels": 2},
        )
        assert isinstance(result.payload, SuiteResults)
        assert result.payload.labels == ["sphinx3_an4"]
        assert result.payload.schemes == ["triangel"]
        blob = result.to_json()
        again = api.ExperimentResult.from_json(blob)
        assert isinstance(again.payload, SuiteResults)
        assert again.payload.to_dict() == result.payload.to_dict()
        assert again.text() == result.text()
        assert again.overrides == {"dram.channels": 2}
        # The payload dict is also directly loadable as a SuiteResults.
        payload_dict = json.loads(blob)["payload"]
        assert SuiteResults.from_dict(payload_dict).to_dict() == payload_dict

    def test_facade_matches_module_report(self):
        import repro.experiments.fig08_markov_targets as fig08

        result = api.run("fig08", records=4000)
        assert result.text() == fig08.report(4000)

    def test_generic_workload_selection(self):
        result = api.run("fig08", records=4000, workloads=["mcf_inp"])
        assert set(result.payload) == {"mcf_inp", "all"}

    @pytest.mark.parametrize("name,kwargs", [
        ("fig01", {"records": 8_000}),
        ("fig06", {"records": 8_000}),
        ("fig08", {"records": 4_000}),
        ("fig14", {"records": 3_000}),
        ("fig16", {"records": 3_000, "workloads": ["sphinx3_an4"]}),
        ("fig19", {"records": 3_000, "workloads": ["sphinx3_an4"]}),
        ("storage", {}),
        ("energy", {"records": 4_000, "workloads": ["sphinx3_an4"]}),
        ("overhead", {"records": 4_000, "workloads": ["sphinx3_an4"]}),
        ("injection", {"records": 4_000, "workloads": ["sphinx3_an4"]}),
        ("degree", {"records": 3_000, "workloads": ["sphinx3_an4"]}),
        ("ways", {"records": 3_000, "workloads": ["sphinx3_an4"]}),
    ])
    def test_every_payload_kind_round_trips_renderable(self, name, kwargs):
        # Deserialized results must render exactly like live ones: every
        # experiment's from_dict restores a payload its renderer,
        # tabulation, and CSV path all accept.
        result = api.run(name, **kwargs)
        again = api.ExperimentResult.from_json(result.to_json())
        assert again.text() == result.text()
        assert viz.result_csv(again) == viz.result_csv(result)

    def test_runner_restored_after_run(self):
        from repro.runner import get_runner

        before = get_runner()
        api.run("storage", jobs=1)
        assert get_runner() is before


class TestSpecMemo:
    def test_memo_keys_on_config_content(self, monkeypatch):
        from repro.experiments import common

        calls = []

        def fake_evaluate(traces, config=None, schemes=None, **kwargs):
            calls.append(config)
            return SuiteResults(schemes=[])

        monkeypatch.setattr(common, "evaluate_suite", fake_evaluate)
        monkeypatch.setattr(common, "_SPEC_MEMO", {})
        first = common.spec_comparison(1000)
        again = common.spec_comparison(1000)
        assert again is first and len(calls) == 1
        # Same record count, different config: must NOT share results.
        common.spec_comparison(1000, default_config().with_dram_channels(2))
        assert len(calls) == 2
        # ... and a config equal in content hits the memo again.
        common.spec_comparison(1000, default_config())
        assert len(calls) == 2

    def test_config_digest_content_hash(self):
        assert config_digest(default_config()) == config_digest(default_config())
        assert config_digest(default_config()) != config_digest(
            default_config().with_l1_prefetcher("ipcp")
        )


class TestCLIClient:
    def test_json_flag_round_trips(self, tmp_path, capsys):
        assert cli.main([
            "fig10", "--records", "5000", "--workloads", "sphinx3_an4",
            "--schemes", "triangel", "--set", "l3.size_kb=1024",
            "--json", "--out", str(tmp_path), "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        result = api.ExperimentResult.from_json(out)
        assert result.name == "fig10"
        assert result.overrides == {"l3.size_kb": 1024}
        assert isinstance(result.payload, SuiteResults)
        on_disk = api.ExperimentResult.from_json(
            (tmp_path / "fig10.json").read_text()
        )
        assert on_disk.payload.to_dict() == result.payload.to_dict()

    def test_bad_set_expression_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["storage", "--set", "oops"])

    def test_unknown_override_key_errors(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig10", "--records", "2000", "--set", "l3.bogus=1"])

    def test_render_result_formats(self):
        result = api.run("storage")
        assert "48.00" in viz.render_result(result, "report")
        assert viz.render_result(result, "csv").startswith("structure,")
        assert "█" in viz.render_result(result, "chart")
        assert "| structure |" in viz.render_result(result, "markdown")
        parsed = json.loads(viz.render_result(result, "json"))
        assert parsed["experiment"] == "storage"
        with pytest.raises(ValueError):
            viz.render_result(result, "nope")
