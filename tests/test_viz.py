"""Tests for ASCII chart rendering and CSV/markdown export."""

import csv
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import (
    bar_chart,
    grouped_bar_chart,
    suite_chart,
    suite_to_csv,
    suite_to_markdown,
    to_csv,
    to_markdown,
)


class TestBarChart:
    def test_longest_bar_belongs_to_max(self):
        chart = bar_chart(["a", "b", "c"], [1.0, 3.0, 2.0])
        rows = chart.splitlines()
        widths = {row[0]: row.count("█") for row in rows}
        assert widths["b"] == max(widths.values())
        assert widths["a"] < widths["c"] < widths["b"]

    def test_title_and_values_shown(self):
        chart = bar_chart(["x"], [2.5], title="My chart")
        assert chart.startswith("My chart")
        assert "2.500" in chart

    def test_zero_and_negative_values_render_empty_bars(self):
        chart = bar_chart(["z", "n"], [0.0, -1.0], vmax=1.0)
        assert "█" not in chart

    def test_shared_axis_via_vmax(self):
        a = bar_chart(["x"], [1.0], vmax=4.0, width=40)
        b = bar_chart(["x"], [2.0], vmax=4.0, width=40)
        assert a.count("█") * 2 == b.count("█")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_empty_chart(self):
        assert bar_chart([], [], title="t") == "t"

    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=100, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_bar_width_monotone_in_value(self, values):
        labels = [f"l{i}" for i in range(len(values))]
        rows = bar_chart(labels, values, width=60).splitlines()
        widths = [row.count("█") for row in rows]
        order = sorted(range(len(values)), key=lambda i: values[i])
        for a, b in zip(order, order[1:]):
            assert widths[a] <= widths[b]


class TestGroupedBarChart:
    def test_rows_per_label_equals_series_count(self):
        chart = grouped_bar_chart(
            ["w1", "w2"], {"s1": [1, 2], "s2": [3, 4]}
        )
        assert len(chart.splitlines()) == 4

    def test_baseline_relative_rendering(self):
        """With baseline=1.0, a 1.02 bar is much shorter than a 1.30 bar."""
        chart = grouped_bar_chart(
            ["w"], {"small": [1.02], "big": [1.30]}, baseline=1.0, width=56
        )
        small_row, big_row = chart.splitlines()
        assert small_row.count("█") < big_row.count("█") / 3

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})


class TestCsv:
    def test_round_trips_through_csv_module(self):
        text = to_csv(["a", "b"], [["x,y", 'has "quotes"'], ["plain", 2]])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed == [["a", "b"], ["x,y", 'has "quotes"'], ["plain", "2"]]

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            to_csv(["a", "b"], [["only-one"]])

    @given(
        cells=st.lists(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",)),
                max_size=12,
            ),
            min_size=2,
            max_size=2,
        )
    )
    @settings(max_examples=40)
    def test_any_text_round_trips(self, cells):
        # csv.reader treats \r\n as one line ending; normalize like csv does.
        text = to_csv(["h1", "h2"], [cells])
        parsed = list(csv.reader(io.StringIO(text)))
        expected = [c.replace("\r\n", "\n") for c in cells]
        assert [c.replace("\r\n", "\n") for c in parsed[1]] == expected


class TestMarkdown:
    def test_structure(self):
        md = to_markdown(["h1", "h2"], [["a", "b"]])
        lines = md.splitlines()
        assert lines[0] == "| h1 | h2 |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| a | b |"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            to_markdown(["a"], [["x", "y"]])


class TestSuiteExports:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.experiments.common import evaluate_suite, make_triangel
        from repro.workloads.spec import make_spec_trace

        traces = [make_spec_trace("mcf", "inp", 6000)]
        return evaluate_suite(traces, schemes={"triangel": make_triangel})

    def test_csv_has_geomean_row(self, results):
        text = suite_to_csv(results, "speedup")
        assert text.splitlines()[0] == "workload,triangel"
        assert text.splitlines()[-1].startswith("geomean,")

    def test_markdown_renders(self, results):
        md = suite_to_markdown(results, "traffic")
        assert md.startswith("| workload | triangel |")

    def test_chart_renders_all_workloads(self, results):
        chart = suite_chart(results, "speedup", title="spd")
        assert "mcf_inp" in chart and chart.startswith("spd")

    def test_unknown_metric_raises(self, results):
        with pytest.raises(AttributeError):
            suite_to_csv(results, "nonsense")
