"""Unit tests for the replacement policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.replacement import (
    FIFOPolicy,
    HawkeyePolicy,
    LRUPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 0)  # refresh way 0
        assert p.victim(0) == 1

    def test_fill_refreshes_recency(self):
        p = LRUPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_fill(0, 0)
        assert p.victim(0) == 1

    def test_restricted_candidates(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        # Way 0 is globally LRU but excluded from candidates.
        assert p.victim(0, [2, 3]) == 2

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.on_fill(0, 0)
        p.on_fill(1, 1)
        p.on_fill(0, 1)
        assert p.victim(0) == 0
        assert p.victim(1) == 0  # way 0 of set 1 never touched

    def test_empty_candidates_raises(self):
        p = LRUPolicy(1, 2)
        with pytest.raises(ValueError):
            p.victim(0, [])


class TestFIFO:
    def test_hits_do_not_refresh(self):
        p = FIFOPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        assert p.victim(0) == 0  # still oldest fill


class TestTreePLRU:
    def test_requires_power_of_two_assoc(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(1, 6)

    def test_victim_avoids_most_recent(self):
        p = TreePLRUPolicy(1, 8)
        for way in range(8):
            p.on_fill(0, way)
        p.on_hit(0, 3)
        assert p.victim(0) != 3

    def test_two_way_behaves_like_lru(self):
        p = TreePLRUPolicy(1, 2)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        assert p.victim(0) == 1

    def test_rank_zero_matches_victim_walk(self):
        p = TreePLRUPolicy(4, 8)
        for s in range(4):
            for way in range(8):
                p.on_fill(s, way)
            p.on_hit(s, s % 8)
            walk = p.victim(s)
            assert p.rank(s, walk) == 0
            # The walk victim has the strictly smallest rank.
            ranks = [p.rank(s, w) for w in range(8)]
            assert ranks.count(0) == 1

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_victim_never_equals_last_touch(self, touches):
        p = TreePLRUPolicy(1, 8)
        for way in touches:
            p.on_hit(0, way)
        assert p.victim(0) != touches[-1]


class TestSRRIP:
    def test_fill_inserts_at_long_interval(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        assert p.rrpv_of(0, 0) == p.max_rrpv - 1

    def test_hit_promotes_to_zero(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        p.on_hit(0, 0)
        assert p.rrpv_of(0, 0) == 0

    def test_victim_prefers_distant_rrpv(self):
        p = SRRIPPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 2)
        assert p.victim(0) != 2

    def test_untouched_ways_evicted_first(self):
        p = SRRIPPolicy(1, 4)
        p.on_fill(0, 0)
        p.on_fill(0, 1)
        p.on_hit(0, 0)
        p.on_hit(0, 1)
        # Ways 2, 3 never filled: still at max RRPV.
        assert p.victim(0) in (2, 3)

    def test_restricted_candidates(self):
        p = SRRIPPolicy(1, 4)
        for way in range(4):
            p.on_fill(0, way)
        p.on_hit(0, 1)
        assert p.victim(0, [0, 1]) == 0


class TestHawkeye:
    def test_friendly_signature_protected(self):
        p = HawkeyePolicy(1, 4)
        # Train signature 7 as cache-friendly via short reuses.
        for way in (0, 0, 0, 0):
            p.record_access(0, way, 7)
        p.on_fill(0, 0)
        # Averse signature: one-shot long-idle signatures never reused.
        for i, way in enumerate((1, 2, 3)):
            p.record_access(0, way, 100 + i)
            p.on_fill(0, way)
        assert p.victim(0) != 0

    def test_eviction_of_friendly_line_detrains(self):
        p = HawkeyePolicy(1, 2)
        for _ in range(4):
            p.record_access(0, 0, 9)
        p.on_fill(0, 0)
        before = p._counters[9]
        p.record_access(0, 1, 9)
        p.on_fill(0, 1)
        p.victim(0)
        assert p._counters[9] <= before + 1  # detrain happened on eviction


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["lru", "fifo", "plru", "srrip", "hawkeye", "char"]
    )
    def test_known_policies(self, name):
        p = make_policy(name, 4, 4)
        p.on_fill(0, 0)
        assert 0 <= p.victim(0) < 4

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("belady", 4, 4)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            LRUPolicy(0, 4)


@given(
    st.sampled_from(["lru", "fifo", "srrip", "plru"]),
    st.lists(
        st.tuples(st.sampled_from(["fill", "hit"]), st.integers(0, 7)),
        max_size=100,
    ),
)
@settings(max_examples=60, deadline=None)
def test_policy_victim_always_valid(name, ops):
    """Property: any op sequence leaves victim() returning a valid way."""
    p = make_policy(name, 2, 8)
    for op, way in ops:
        if op == "fill":
            p.on_fill(way % 2, way)
        else:
            p.on_hit(way % 2, way)
    assert 0 <= p.victim(0) < 8
    assert 0 <= p.victim(1) < 8
