"""Shared test fixtures and markers.

``requires_numpy`` marks tests that exercise the numpy-backed engine
rung or record-array machinery directly.  In a scalar-only environment
(no numpy, or one older than the floor in :mod:`repro._accel`) those
tests are skipped rather than failed — the library itself degrades to
the scalar engines there, and the remaining suite pins that behaviour.
"""

import pytest

from repro._accel import numpy_capability


def pytest_collection_modifyitems(config, items):
    cap = numpy_capability()
    if cap.ok:
        return
    skip = pytest.mark.skip(
        reason=f"numpy unavailable ({cap.reason}); scalar engines only"
    )
    for item in items:
        if "requires_numpy" in item.keywords:
            item.add_marker(skip)
