"""Tests for the CLI's trace/chart/csv commands and new experiments."""

import pytest

from repro import cli
from repro.experiments import REGISTRY


class TestRegistry:
    def test_new_experiments_registered(self):
        for name in ("offchip", "injection", "tlbvm"):
            assert name in REGISTRY

    def test_suite_experiments_declare_metrics(self):
        for exp in REGISTRY.values():
            if exp.kind == "suite":
                assert exp.metrics, f"{exp.name} declares no metrics"
                assert exp.supports_workloads and exp.supports_schemes

    def test_list_marks_chartable(self, capsys):
        cli.main(["list"])
        out = capsys.readouterr().out
        assert "chartable" in out
        assert "tlbvm" in out


class TestTraceCommand:
    def test_single_workload(self, capsys):
        assert cli.main(["trace", "mcf_inp", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "mcf_inp" in out
        assert "verdict" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["trace", "not_a_workload", "--records", "4000"])

    def test_trace_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["trace"])


class TestChartCommand:
    def test_chart_renders(self, capsys):
        assert cli.main(["fig10", "--chart", "--records", "20000",
                         "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "█" in out or "▌" in out
        assert "prophet" in out

    def test_csv_renders(self, capsys):
        assert cli.main(["fig10", "--csv", "--records", "20000",
                         "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("workload,")
        assert "geomean" in out

    def test_generic_experiment_charts_too(self, capsys):
        # Non-suite experiments render through their tabulation now
        # (the old CLI rejected anything outside the CHARTABLE table).
        assert cli.main(["storage", "--chart", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "█" in out or "▌" in out

    def test_chart_and_csv_respect_out(self, tmp_path, capsys):
        assert cli.main(["storage", "--chart", "--out", str(tmp_path),
                         "--no-cache"]) == 0
        assert (tmp_path / "storage.txt").exists()
        assert cli.main(["storage", "--csv", "--out", str(tmp_path),
                         "--no-cache"]) == 0
        csv_text = (tmp_path / "storage.csv").read_text()
        assert csv_text.startswith("structure,")


class TestJsonErrorEnvelope:
    """CLI failures under ``--json`` emit the serve API's error envelope
    on stdout with a non-zero exit, instead of argparse's usage text."""

    def test_unknown_experiment_json_envelope(self, capsys):
        import json

        rc = cli.main(["nope", "--json"])
        assert rc == 2
        body = json.loads(capsys.readouterr().out)
        assert set(body) == {"error"}
        assert body["error"]["code"] == "unknown-experiment"
        assert "nope" in body["error"]["message"]

    def test_invalid_workload_json_envelope(self, capsys):
        import json

        rc = cli.main(["fig10", "--json", "--no-cache",
                       "--workloads", "bogus_workload"])
        assert rc == 2
        body = json.loads(capsys.readouterr().out)
        assert body["error"]["code"] == "invalid-request"
        assert "bogus_workload" in body["error"]["message"]

    def test_envelope_schema_matches_serve_api(self, capsys):
        import json

        from repro.serve import ServeError, ServeRequest

        cli.main(["nope", "--json"])
        cli_body = json.loads(capsys.readouterr().out)
        with pytest.raises(ServeError) as exc:
            ServeRequest.from_payload({"experiment": "nope"})
        serve_body = exc.value.envelope()
        assert set(cli_body) == set(serve_body) == {"error"}
        assert set(cli_body["error"]) >= {"code", "message"}

    def test_without_json_still_exits_via_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["nope"])
        assert exc.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBenchCommand:
    """`repro.cli bench` shells the throughput benchmark in smoke mode."""

    def test_bench_smoke_runs_and_writes_scratch_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert cli.main(["bench", "--records", "600", "--out", str(out)]) == 0
        blob = json.loads(out.read_text())
        assert "fill_path" in blob and "prophet_path" in blob
        assert blob["fill_path"]["speedup_flat_vs_reference_prophet"] > 0

    def test_bench_never_touches_committed_trajectory(self):
        from pathlib import Path

        committed = Path(cli.__file__).resolve().parents[2] / "benchmarks" \
            / "BENCH_engine.json"
        before = committed.read_text()
        assert cli.main(["bench", "--records", "400"]) == 0
        assert committed.read_text() == before
