"""Tests for the CLI's trace/chart/csv commands and new experiments."""

import pytest

from repro import cli


class TestRegistry:
    def test_new_experiments_registered(self):
        for name in ("offchip", "injection", "tlbvm"):
            assert name in cli.EXPERIMENTS

    def test_chartable_subset_of_experiments(self):
        assert set(cli.CHARTABLE) <= set(cli.EXPERIMENTS)

    def test_list_marks_chartable(self, capsys):
        cli.main(["list"])
        out = capsys.readouterr().out
        assert "[chartable]" in out
        assert "tlbvm" in out


class TestTraceCommand:
    def test_single_workload(self, capsys):
        assert cli.main(["trace", "mcf_inp", "--records", "8000"]) == 0
        out = capsys.readouterr().out
        assert "mcf_inp" in out
        assert "verdict" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["trace", "not_a_workload", "--records", "4000"])

    def test_trace_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["trace"])


class TestChartCommand:
    def test_chart_rejected_for_unchartable(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig13", "--chart"])

    def test_chart_renders(self, capsys):
        assert cli.main(["fig10", "--chart", "--records", "20000"]) == 0
        out = capsys.readouterr().out
        assert "█" in out or "▌" in out
        assert "prophet" in out

    def test_csv_renders(self, capsys):
        assert cli.main(["fig10", "--csv", "--records", "20000"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("workload,")
        assert "geomean" in out
