"""Pool robustness matrix: death, timeout, eviction, drain, CAS safety.

The distributed pool's failure handling is pinned by *driving real
worker subprocesses into real failures* through the unified
:mod:`repro.faults` schedule: declarative ``pool.worker`` specs
(matched per host by name pattern) are translated by the pool into the
worker's ``REPRO_WORKER_FAULT`` env seam — ``die`` hard-exits on the
``at``-th job, ``hang`` sleeps forever (trips the per-job timeout),
``sleep`` adds latency.  Driving faults per host through the one
schedule is what lets the suite prove a retry lands on a *different*
host.  In-process backends inject through the same module's
``job.execute`` site; the serve harness's :class:`FaultPlan` remains
only as a synchronization gate (hold a job hostage, release it) — a
thing a declarative schedule cannot express.

The CAS half covers the multi-writer cache contract the pools rely on
for NFS-shared ``--cache-dir``: digest-verified reads, write-once keys,
concurrent writers, and ``cas gc`` hygiene.
"""

import json
import os
import signal
import threading
import time

import pytest

from serve_faults import FaultPlan
from repro.faults import FaultInjected, make_schedule
from repro.runner import (
    CacheIntegrityError,
    HostSpec,
    InlinePool,
    LoopbackPool,
    PoolError,
    ResultCache,
    Runner,
    SimJob,
    TraceRef,
)
from repro.runner import schemes as schemes_mod
from repro.runner.runner import payload_to_dict
from repro.sim.config import default_config
from repro.sim.results import SimResult
from repro.workloads.spec import make_spec_trace


@pytest.fixture(scope="module")
def config():
    return default_config()


@pytest.fixture(scope="module")
def traces():
    return [
        make_spec_trace("mcf", None, 2000),
        make_spec_trace("omnetpp", None, 2000),
    ]


@pytest.fixture(scope="module")
def job_set(config, traces):
    mcf, omnetpp = (TraceRef.from_trace(t) for t in traces)
    return [
        SimJob("baseline", mcf, config),
        SimJob("triangel", mcf, config),
        SimJob("baseline", omnetpp, config),
    ]


@pytest.fixture(scope="module")
def serial_payloads(job_set):
    return Runner(jobs=1, use_cache=False).run(job_set)


def _canon(payloads):
    return sorted(json.dumps(payload_to_dict(p), sort_keys=True)
                  for p in payloads)


def hosts(*names):
    return [HostSpec(name=name) for name in names]


# ----------------------------------------------------------------------
# worker death / timeout / eviction / retry
# ----------------------------------------------------------------------
class TestWorkerFaults:
    def test_death_evicts_host_and_retries_elsewhere(
        self, job_set, serial_payloads
    ):
        # Host 0 hard-exits on its first job; host 1 is slowed slightly
        # so host 0 is guaranteed to pick up work before the steady host
        # clears the queue.  The dead host's job must be re-queued and
        # complete on the steady host with identical bytes.
        schedule = make_schedule(11, [
            dict(site="pool.worker", kind="die", at=1, host="dies/*"),
            dict(site="pool.worker", kind="sleep", arg=0.2, host="steady/*"),
        ])
        pool = LoopbackPool(hosts=hosts("dies/0", "steady/1"),
                            retries=2, backoff=0.05, faults=schedule)
        try:
            got = Runner(use_cache=False, pool=pool).run(job_set)
            assert _canon(got) == _canon(serial_payloads)
            info = pool.describe()
            assert info["dead"] == 1 and info["alive"] == 1
            dead = next(h for h in info["hosts"] if not h["alive"])
            assert dead["host"] == "dies/0"
            assert "died" in dead["reason"]
            steady = next(h for h in info["hosts"] if h["alive"])
            assert steady["completed"] == len(job_set)
        finally:
            pool.close()

    def test_timeout_evicts_host_and_retries_elsewhere(
        self, job_set, serial_payloads
    ):
        # Host 0 hangs forever on its first job: the per-job timeout
        # must fire, evict it, and re-run the job on the steady host.
        schedule = make_schedule(11, [
            dict(site="pool.worker", kind="hang", at=1, host="hangs/*"),
            dict(site="pool.worker", kind="sleep", arg=0.2, host="steady/*"),
        ])
        pool = LoopbackPool(hosts=hosts("hangs/0", "steady/1"),
                            per_job_timeout=5.0, retries=2, backoff=0.05,
                            faults=schedule)
        try:
            got = Runner(use_cache=False, pool=pool).run(job_set)
            assert _canon(got) == _canon(serial_payloads)
            info = pool.describe()
            assert info["dead"] == 1
            dead = next(h for h in info["hosts"] if not h["alive"])
            assert "timed out" in dead["reason"]
        finally:
            pool.close()

    def test_all_hosts_dead_fails_loud(self, job_set):
        schedule = make_schedule(11, [
            dict(site="pool.worker", kind="die", at=1),
        ])
        pool = LoopbackPool(hosts=hosts("dies/0"),
                            retries=2, backoff=0.05, faults=schedule)
        try:
            with pytest.raises(PoolError, match="failed"):
                Runner(use_cache=False, pool=pool).run(job_set)
            assert pool.describe()["alive"] == 0
        finally:
            pool.close()

    def test_job_error_is_not_retried(self, config, traces):
        # A deterministic executor failure would fail identically on
        # every host: it must surface once, with zero retries and zero
        # evictions.
        pool = LoopbackPool(workers=2, retries=2, backoff=0.05)
        try:
            bad = SimJob("nope", TraceRef.from_trace(traces[0]), config)
            with pytest.raises(PoolError, match="unknown scheme"):
                Runner(use_cache=False, pool=pool).run([bad])
            info = pool.describe()
            assert info["alive"] == 2
            assert sum(h["failures"] for h in info["hosts"]) == 1
        finally:
            pool.close()


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_request_drain_finishes_in_flight_rejects_new(
        self, config, traces, job_set, serial_payloads
    ):
        pool = LoopbackPool(workers=2)
        try:
            for job in job_set:
                pool.submit(job.cache_key, job, {})
            pool.request_drain()
            extra = SimJob("prophet", TraceRef.from_trace(traces[0]), config,
                           deps={})
            with pytest.raises(PoolError, match="draining"):
                pool.submit(extra.cache_key, extra, {})
            got = dict(pool.drain())
            assert len(got) == len(job_set)
            assert _canon(got.values()) == _canon(serial_payloads)
        finally:
            pool.close()

    def test_sigterm_triggers_drain_and_close_restores_handler(self):
        prev = signal.getsignal(signal.SIGTERM)
        pool = LoopbackPool(workers=1)
        try:
            assert pool.install_sigterm_drain()
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 5.0
            while not pool._draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool._draining
            assert pool.describe()["draining"]
        finally:
            pool.close()
        assert signal.getsignal(signal.SIGTERM) == prev


# ----------------------------------------------------------------------
# the unified repro.faults seam on in-process backends
# ----------------------------------------------------------------------
class TestFaultSeam:
    def test_inline_pool_propagates_injected_failure(self, config, traces):
        # A scheduled job.execute fault surfaces exactly like a real
        # executor error; the same pool without a schedule passes clean.
        job = SimJob("baseline", TraceRef.from_trace(traces[0]), config)
        pool = InlinePool()
        schedule = make_schedule(3, [
            dict(site="job.execute", kind="error", at=1),
        ])
        with pytest.raises(FaultInjected, match="job.execute"):
            Runner(use_cache=False, pool=pool, faults=schedule).run([job])
        [payload] = Runner(use_cache=False, pool=pool).run([job])
        assert payload is not None

    def test_schedule_fires_identically_across_runs(self, config, traces):
        # Counters reset each run: the 2nd job fails in both runs.
        jobs = [
            SimJob("baseline", TraceRef.from_trace(traces[0]), config),
            SimJob("baseline", TraceRef.from_trace(traces[1]), config),
        ]
        schedule = make_schedule(3, [
            dict(site="job.execute", kind="error", at=2),
        ])
        runner = Runner(use_cache=False, pool=InlinePool(),
                        faults=schedule, on_error="skip")
        for _ in range(2):
            got = runner.run(jobs)
            assert got[0] is not None and got[1] is None
        assert len(runner.failure_log) == 2
        assert {f.key for f in runner.failure_log} == {jobs[1].cache_key}

    def test_held_job_completes_after_release(
        self, monkeypatch, config, traces
    ):
        # FaultPlan survives as the synchronization gate (a declarative
        # schedule cannot hold a job hostage behind an event).
        plan = FaultPlan()
        real = schemes_mod.execute_job
        monkeypatch.setattr(
            schemes_mod, "execute_job",
            lambda *a, **kw: plan.apply(real, *a, **kw),
        )
        job = SimJob("baseline", TraceRef.from_trace(traces[0]), config)
        runner = Runner(use_cache=False, pool=InlinePool())
        plan.hold()
        done = []
        worker = threading.Thread(
            target=lambda: done.extend(runner.run([job])), daemon=True
        )
        worker.start()
        assert plan.entered.wait(timeout=10.0)
        assert not done
        plan.release()
        worker.join(timeout=30.0)
        assert len(done) == 1


# ----------------------------------------------------------------------
# the content-addressed store under concurrency and corruption
# ----------------------------------------------------------------------
def _payload(cycles=100.0):
    return SimResult("w", "s", 1, cycles, 0, 0, 0, 0, 0)


class TestContentAddressedStore:
    def test_concurrent_writers_stay_digest_clean(self, tmp_path):
        # Many writers (threads here; hosts over NFS in deployment)
        # racing the same keys must leave only verified entries.
        cache = ResultCache(tmp_path)
        keys = [f"key{i}" for i in range(4)]
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    for key in keys:
                        cache.put(key, _payload())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.verify()
        assert stats == {"entries": 4, "verified": 4, "legacy": 0,
                         "corrupt": 0}
        assert not list(tmp_path.glob("*.tmp"))
        for key in keys:
            assert cache.get(key) == _payload()

    def test_write_once_equal_payload_is_benign(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _payload())
        cache.put("k", _payload())  # same digest: no-op
        assert cache.verify()["entries"] == 1

    def test_divergent_payload_raises_integrity_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _payload(100.0))
        with pytest.raises(CacheIntegrityError, match="different"):
            cache.put("k", _payload(200.0))
        # The original entry survives untouched.
        assert cache.get("k") == _payload(100.0)

    def test_digest_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _payload(100.0))
        path = tmp_path / "k.json"
        entry = json.loads(path.read_text())
        entry["payload"]["data"]["cycles"] = 999.0  # bit-rot the payload
        path.write_text(json.dumps(entry))
        assert cache.get("k") is None
        assert cache.verify_failures == 1
        # put() treats the corrupt entry as absent and repairs it.
        cache.put("k", _payload(100.0))
        assert cache.get("k") == _payload(100.0)

    def test_legacy_entries_still_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps(payload_to_dict(_payload()))
        )
        assert cache.get("old") == _payload()
        assert cache.verify()["legacy"] == 1

    def test_gc_prunes_corrupt_stale_and_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("keep", _payload())
        (tmp_path / "bad.json").write_text("{torn")
        orphan = tmp_path / "x.123-456.tmp"
        orphan.write_text("{}")
        os.utime(orphan, (time.time() - 7200, time.time() - 7200))
        fresh_tmp = tmp_path / "y.789-012.tmp"
        fresh_tmp.write_text("{}")  # a live writer's temp: must survive
        stats = cache.gc()
        assert stats["removed_corrupt"] == 1
        assert stats["removed_tmp"] == 1
        assert stats["kept"] == 1
        assert fresh_tmp.exists() and not orphan.exists()
        # Retention: max_age_days drops even valid entries.
        old = tmp_path / "keep.json"
        os.utime(old, (time.time() - 86400 * 3,) * 2)
        stats = cache.gc(max_age_days=1)
        assert stats["removed_stale"] == 1
        assert cache.get("keep") is None
