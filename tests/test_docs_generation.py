"""The generated experiment catalog must track the live registry.

``docs/experiments.md`` is rendered by ``scripts/gen_experiment_docs.py``
from the experiment registry; CI runs the script's ``--check`` mode, and
this test pins the same property in the tier-1 suite so a stale catalog
fails close to the change that caused it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "gen_experiment_docs.py"
DOC = REPO_ROOT / "docs" / "experiments.md"


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_experiment_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_experiment_docs", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def generator():
    return _load_generator()


def test_catalog_is_fresh(generator):
    assert DOC.exists(), (
        "docs/experiments.md missing; run "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )
    assert DOC.read_text() == generator.render_catalog(), (
        "docs/experiments.md is stale; regenerate with "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )


def test_catalog_covers_every_registered_experiment(generator):
    from repro.experiments import all_experiments

    content = generator.render_catalog()
    for exp in all_experiments():
        assert f"## {exp.name}" in content
        assert exp.description in content


def test_check_mode_detects_staleness(generator, tmp_path):
    stale = tmp_path / "experiments.md"
    stale.write_text("# outdated\n")
    wl = tmp_path / "workloads.md"
    wl.write_text(
        f"# doc\n{generator.SOURCES_BEGIN}\nold\n{generator.SOURCES_END}\n"
    )
    assert generator.main(
        ["--check", "--out", str(stale), "--workloads-doc", str(wl)]
    ) == 2
    assert generator.main(
        ["--out", str(stale), "--workloads-doc", str(wl)]
    ) == 0
    assert generator.main(
        ["--check", "--out", str(stale), "--workloads-doc", str(wl)]
    ) == 0


def test_workloads_doc_region_is_fresh(generator):
    doc = REPO_ROOT / "docs" / "workloads.md"
    assert doc.exists(), (
        "docs/workloads.md missing; run "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )
    current = doc.read_text()
    assert generator.splice_source_catalog(current) == current, (
        "docs/workloads.md generated region is stale; regenerate with "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )


def test_workloads_doc_covers_every_generator_scenario(generator):
    from repro.workloads.generators import GENERATOR_SCENARIOS

    content = generator.render_source_catalog()
    for label in GENERATOR_SCENARIOS:
        assert f"`{label}`" in content


def test_workloads_doc_stale_region_detected(generator, tmp_path):
    wl = tmp_path / "workloads.md"
    wl.write_text(
        f"intro\n{generator.SOURCES_BEGIN}\nstale\n{generator.SOURCES_END}\nend\n"
    )
    out = tmp_path / "experiments.md"
    out.write_text(generator.render_catalog())  # experiments doc is fresh
    assert generator.main(
        ["--check", "--out", str(out), "--workloads-doc", str(wl)]
    ) == 2
    # The hand-written narrative around the region survives a rewrite.
    assert generator.main(
        ["--out", str(out), "--workloads-doc", str(wl)]
    ) == 0
    text = wl.read_text()
    assert text.startswith("intro\n")
    assert text.endswith("end\n")
    assert "stale" not in text
