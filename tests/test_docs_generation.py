"""The generated experiment catalog must track the live registry.

``docs/experiments.md`` is rendered by ``scripts/gen_experiment_docs.py``
from the experiment registry; CI runs the script's ``--check`` mode, and
this test pins the same property in the tier-1 suite so a stale catalog
fails close to the change that caused it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "gen_experiment_docs.py"
DOC = REPO_ROOT / "docs" / "experiments.md"


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_experiment_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_experiment_docs", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def generator():
    return _load_generator()


def test_catalog_is_fresh(generator):
    assert DOC.exists(), (
        "docs/experiments.md missing; run "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )
    assert DOC.read_text() == generator.render_catalog(), (
        "docs/experiments.md is stale; regenerate with "
        "`PYTHONPATH=src python scripts/gen_experiment_docs.py`"
    )


def test_catalog_covers_every_registered_experiment(generator):
    from repro.experiments import all_experiments

    content = generator.render_catalog()
    for exp in all_experiments():
        assert f"## {exp.name}" in content
        assert exp.description in content


def test_check_mode_detects_staleness(generator, tmp_path):
    stale = tmp_path / "experiments.md"
    stale.write_text("# outdated\n")
    assert generator.main(["--check", "--out", str(stale)]) == 2
    assert generator.main(["--out", str(stale)]) == 0
    assert generator.main(["--check", "--out", str(stale)]) == 0
