"""Tests for the energy model and smoke tests for every experiment module."""

import pytest

from repro.energy.cacti import (
    DRAM_MULTIPLIER,
    EnergyBreakdown,
    hierarchy_energy,
    relative_overhead,
    sram_access_pj,
)
from repro.sim.config import default_config
from repro.sim.results import SimResult, format_table, geomean


def make_result(**overrides):
    base = dict(
        label="w", scheme="s", instructions=1_000_000, cycles=2_000_000.0,
        l2_demand_misses=10_000, dram_reads=8_000, dram_writes=1_000,
        pf_issued=5_000, pf_useful=4_000,
    )
    base.update(overrides)
    return SimResult(**base)


class TestEnergyModel:
    def test_sram_energy_scales_with_size(self):
        assert sram_access_pj(2 * 1024 * 1024) == pytest.approx(250.0)
        assert sram_access_pj(512 * 1024) == pytest.approx(125.0)
        assert sram_access_pj(0) == 0.0

    def test_dram_multiplier_is_25x(self):
        assert DRAM_MULTIPLIER == 25.0

    def test_breakdown_components(self):
        cfg = default_config()
        res = make_result()
        e = hierarchy_energy(res, cfg, metadata_accesses=1000)
        assert set(e.components) >= {"l2", "llc", "metadata_table", "dram"}
        assert e.total_pj > 0

    def test_dram_dominates_for_traffic_heavy_runs(self):
        cfg = default_config()
        res = make_result(dram_reads=100_000, dram_writes=50_000)
        e = hierarchy_energy(res, cfg)
        assert e.components["dram"] > e.components["llc"]

    def test_relative_overhead(self):
        a = EnergyBreakdown({"x": 110.0})
        b = EnergyBreakdown({"x": 100.0})
        assert relative_overhead(a, b) == pytest.approx(0.10)
        assert relative_overhead(a, EnergyBreakdown({})) == 0.0

    def test_prophet_structures_add_energy(self):
        cfg = default_config()
        res = make_result()
        plain = hierarchy_energy(res, cfg, metadata_accesses=10_000)
        prophet = hierarchy_energy(
            res, cfg, metadata_accesses=10_000, mvb_accesses=5_000,
            mvb_bytes=352_256, extra_state_bytes=48 * 1024,
        )
        assert prophet.total_pj > plain.total_pj


class TestResultHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "1"], ["yy", "22"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_traffic_and_coverage_edge_cases(self):
        base = make_result(dram_reads=0, dram_writes=0, l2_demand_misses=0)
        res = make_result()
        assert res.traffic_over(base) == 1.0
        assert res.coverage_over(base) == 0.0


class TestExperimentSmoke:
    """Each experiment module runs end to end at a tiny scale."""

    def test_fig01(self):
        from repro.experiments import fig01_pattern
        a = fig01_pattern.analyze_pattern(20_000)
        assert a.events and a.conf_timeline
        assert "Fig. 1" in fig01_pattern.report(20_000)

    def test_fig06(self):
        from repro.experiments import fig06_accuracy_levels
        levels = fig06_accuracy_levels.measure_levels(20_000)
        assert levels.per_pc

    def test_fig08(self):
        from repro.experiments import fig08_markov_targets
        dists = fig08_markov_targets.measure(10_000)
        assert "all" in dists
        for dist in dists.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6) or not any(
                dist.values()
            )

    def test_storage(self):
        from repro.experiments import storage
        measured = storage.measure()
        assert measured["replacement_state_kb"] == 48.0

    def test_overhead(self):
        from repro.experiments import overhead
        reports = overhead.measure(15_000)
        assert len(reports) == 7
        for r in reports.values():
            assert r.hint_instructions <= 128

    def test_suite_results_tables(self):
        from repro.experiments.common import evaluate_suite
        from repro.workloads.spec import make_spec_trace

        traces = [make_spec_trace("sphinx3", "an4", 10_000)]
        results = evaluate_suite(traces, schemes={})
        assert results.labels == ["sphinx3_an4"]
        assert "baseline" in results.by_workload["sphinx3_an4"]

    def test_spec_comparison_memo_contract(self):
        from repro.experiments.common import _SPEC_MEMO
        from repro.sim.config import config_digest, default_config

        # The shared Fig. 10/11/12 memo is keyed by (records, config
        # content hash): two callers with different SystemConfigs must
        # never share results, even at equal record counts.
        assert isinstance(_SPEC_MEMO, dict)
        digest = config_digest(default_config())
        assert digest != config_digest(default_config().with_dram_channels(2))
        for key in _SPEC_MEMO:
            assert len(key) == 2
            assert isinstance(key[1], str) and len(key[1]) == 64


class TestExperimentSmokeSlowPieces:
    def test_learning_study_tiny(self):
        from repro.experiments.fig13_learning_gcc import run_learning_study

        res = run_learning_study("astar", ["biglakes"], ["biglakes"], 12_000)
        assert "Disable" in res.speedup and "Direct" in res.speedup
        assert res.geomean_of("Direct") > 0

    def test_fig19_states_cover_all_features(self):
        from repro.experiments.fig19_breakdown import STATES

        names = [name for name, _ in STATES]
        assert names == ["Triage4+Meta", "+Repla", "+Insert", "+MVB", "+Resize"]
        final = STATES[-1][1]
        assert final.insertion and final.replacement and final.mvb and final.resizing
