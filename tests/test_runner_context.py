"""Concurrency regression tests for the context-local active Runner.

The PR-7 serve mode runs experiments from a worker thread pool against
one process; the old module-global ``_ACTIVE`` meant two overlapping
``use_runner`` scopes in different threads raced each other's restore.
These tests pin the ContextVar semantics: per-thread isolation, one
shared lazily-built default, and correct nested restores.
"""

import threading

from repro.runner import Runner, get_runner, make_runner, set_runner, use_runner
from repro.runner import context as runner_context


def _fresh_default():
    """Reset the process-wide default runner (tests only)."""
    runner_context._DEFAULT = None


class TestContextIsolation:
    def test_use_runner_installs_and_restores(self):
        before = get_runner()
        mine = make_runner(jobs=1)
        with use_runner(mine) as active:
            assert active is mine
            assert get_runner() is mine
        assert get_runner() is before

    def test_nested_use_runner_unwinds_in_order(self):
        outer, inner = make_runner(), make_runner()
        with use_runner(outer):
            with use_runner(inner):
                assert get_runner() is inner
            assert get_runner() is outer

    def test_set_runner_none_falls_back_to_default(self):
        mine = make_runner()
        set_runner(mine)
        assert get_runner() is mine
        set_runner(None)
        default = get_runner()
        assert default is not mine
        assert default is get_runner()  # stable default instance

    def test_threads_see_their_own_runner(self):
        """N threads install N runners concurrently; no cross-talk."""
        n = 8
        barrier = threading.Barrier(n)
        failures = []

        def worker(idx: int) -> None:
            mine = make_runner(jobs=1)
            with use_runner(mine):
                barrier.wait(timeout=10)  # all scopes overlap right now
                for _ in range(200):
                    if get_runner() is not mine:
                        failures.append(idx)
                        return
            if get_runner() is mine:  # scope must not leak
                failures.append(idx)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures

    def test_thread_without_install_gets_shared_default(self):
        """Threads that never install a runner share one default."""
        _fresh_default()
        n = 8
        barrier = threading.Barrier(n)
        seen = []
        lock = threading.Lock()

        def worker() -> None:
            barrier.wait(timeout=10)  # racing first-builds of the default
            runner = get_runner()
            with lock:
                seen.append(runner)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(seen) == n
        assert all(r is seen[0] for r in seen)
        assert isinstance(seen[0], Runner)

    def test_main_thread_unaffected_by_worker_install(self):
        before = get_runner()
        done = threading.Event()
        release = threading.Event()

        def worker() -> None:
            with use_runner(make_runner()):
                done.set()
                release.wait(timeout=10)

        t = threading.Thread(target=worker)
        t.start()
        assert done.wait(timeout=10)
        assert get_runner() is before  # worker's install is invisible here
        release.set()
        t.join(timeout=10)


class TestProgressScope:
    def test_scope_routes_events_per_thread(self):
        """One shared Runner, two threads, two progress sinks."""
        shared = make_runner()
        events = {"a": [], "b": []}
        barrier = threading.Barrier(2)

        def worker(key: str) -> None:
            def sink(event, job, done, total):
                events[key].append(event)

            with shared.progress_scope(sink):
                barrier.wait(timeout=10)
                for _ in range(50):
                    shared._emit("done", None, 1, 1)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(events["a"]) == 50
        assert len(events["b"]) == 50

    def test_scope_overrides_and_restores_constructor_progress(self):
        base_events = []
        shared = make_runner(progress=lambda *a: base_events.append(a[0]))
        scoped = []
        with shared.progress_scope(lambda *a: scoped.append(a[0])):
            shared._emit("start", None, 0, 1)
        shared._emit("done", None, 1, 1)
        assert scoped == ["start"]
        assert base_events == ["done"]

    def test_none_scope_is_a_no_op(self):
        base_events = []
        shared = make_runner(progress=lambda *a: base_events.append(a[0]))
        with shared.progress_scope(None):
            shared._emit("start", None, 0, 1)
        assert base_events == ["start"]
