"""Unit tests for the MSHR file and the DRAM model."""

import pytest

from repro.cache.mshr import (
    M_CONSUMED,
    M_IS_PREFETCH,
    M_PF_SOURCE,
    M_READY,
    M_TRIGGER_PC,
    MSHRFile,
)
from repro.memory.dram import DRAMModel
from repro.sim.config import DRAMConfig, LINE_SIZE


class TestMSHR:
    def test_allocate_and_lookup(self):
        m = MSHRFile(4)
        assert m.allocate(10, ready_cycle=100.0, cycle=0.0)
        entry = m.lookup(10, 50.0)
        assert entry is not None and entry[M_READY] == 100.0

    def test_completed_entries_invisible(self):
        m = MSHRFile(4)
        m.allocate(10, 100.0, 0.0)
        assert m.lookup(10, 150.0) is None

    def test_merge_does_not_consume_entry(self):
        m = MSHRFile(1)
        m.allocate(10, 100.0, 0.0)
        assert m.allocate(10, 200.0, 1.0)  # merge
        assert m.merges == 1
        assert m.lookup(10, 50.0)[M_READY] == 100.0  # original ready kept

    def test_full_rejects(self):
        m = MSHRFile(1)
        m.allocate(1, 100.0, 0.0)
        assert not m.allocate(2, 100.0, 0.0)
        assert m.rejects == 1

    def test_capacity_reclaimed_after_completion(self):
        m = MSHRFile(1)
        m.allocate(1, 10.0, 0.0)
        assert m.allocate(2, 100.0, 50.0)  # entry 1 completed by cycle 50

    def test_is_full_accounts_for_completions(self):
        m = MSHRFile(2)
        m.allocate(1, 10.0, 0.0)
        m.allocate(2, 10.0, 0.0)
        assert m.is_full(5.0)
        assert not m.is_full(20.0)

    def test_prefetch_provenance(self):
        m = MSHRFile(4)
        m.allocate(7, 100.0, 0.0, is_prefetch=True, trigger_pc=0x33, pf_source=2)
        e = m.lookup(7, 1.0)
        assert e[M_IS_PREFETCH] and e[M_TRIGGER_PC] == 0x33
        assert e[M_PF_SOURCE] == 2
        assert not e[M_CONSUMED]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestDRAM:
    def make(self, channels=1):
        return DRAMModel(DRAMConfig(channels=channels))

    def test_unloaded_read_latency(self):
        d = self.make()
        assert d.read(0.0) == d.config.access_latency

    def test_traffic_counters(self):
        d = self.make()
        d.read(0.0)
        d.read(0.0, is_prefetch=True)
        d.write(0.0)
        assert d.stats.reads == 2
        assert d.stats.demand_reads == 1
        assert d.stats.prefetch_reads == 1
        assert d.stats.writes == 1
        assert d.stats.total_traffic == 3

    def test_queueing_under_burst(self):
        d = self.make()
        first = d.read(0.0)
        second = d.read(0.0)  # same-cycle arrival queues behind the first
        assert second > first
        assert second - first == pytest.approx(d.service_cycles)

    def test_queue_drains_over_time(self):
        d = self.make()
        d.read(0.0)
        far_later = d.read(10_000.0)
        assert far_later == d.config.access_latency

    def test_more_channels_reduce_service_time(self):
        one = self.make(channels=1)
        two = self.make(channels=2)
        assert two.service_cycles == pytest.approx(one.service_cycles / 2)

    def test_writes_occupy_channel(self):
        d = self.make()
        for _ in range(8):
            d.write(0.0)
        assert d.read(0.0) > d.config.access_latency

    def test_utilization_hint(self):
        d = self.make()
        assert d.utilization_hint(0.0) == 0.0
        for _ in range(4):
            d.read(0.0)
        assert d.utilization_hint(0.0) > 0.0

    def test_service_cycles_matches_bandwidth(self):
        d = self.make()
        expected = LINE_SIZE / d.config.bytes_per_cycle_per_channel
        assert d.service_cycles == pytest.approx(expected)


class TestMetadataTraffic:
    """DRAM-resident prefetcher metadata accesses (STMS/Domino paths)."""

    def make(self, channels=1):
        from repro.sim.config import DRAMConfig
        from repro.memory.dram import DRAMModel

        return DRAMModel(DRAMConfig(channels=channels))

    def test_metadata_read_counts_in_both_ledgers(self):
        d = self.make()
        d.metadata_read(0.0)
        assert d.stats.reads == 1
        assert d.stats.metadata_reads == 1
        assert d.stats.demand_reads == 0 and d.stats.prefetch_reads == 0
        assert d.stats.total_traffic == 1
        assert d.stats.metadata_traffic == 1

    def test_metadata_write_counts_in_both_ledgers(self):
        d = self.make()
        d.metadata_write(0.0)
        assert d.stats.writes == 1
        assert d.stats.metadata_writes == 1
        assert d.stats.metadata_traffic == 1

    def test_metadata_reads_occupy_the_channel(self):
        """Metadata movement delays a subsequent demand read — the
        contention that motivated on-chip metadata tables."""
        quiet = self.make()
        busy = self.make()
        for _ in range(16):
            busy.metadata_read(0.0)
        assert busy.read(0.0) > quiet.read(0.0)

    def test_reset_clears_metadata_counters(self):
        d = self.make()
        d.metadata_read(0.0)
        d.metadata_write(0.0)
        d.reset_stats()
        assert d.stats.metadata_reads == 0
        assert d.stats.metadata_writes == 0

    def test_breakdown_identity_under_mixed_traffic(self):
        d = self.make()
        for i in range(5):
            d.read(float(i), is_prefetch=(i % 2 == 0))
        for i in range(3):
            d.metadata_read(float(i))
        assert (
            d.stats.demand_reads + d.stats.prefetch_reads + d.stats.metadata_reads
            == d.stats.reads
        )
