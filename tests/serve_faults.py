"""Reusable fault-injection helpers for driving ``repro.serve``.

The serve hardening layer (admission control, durable jobs, SSE
streams, worker supervision) is pinned by *driving the real service
into its failure modes*, not by unit-testing internals.  These helpers
are the shared harness for that — and are deliberately free of pytest
machinery so the future distributed-runner work (ROADMAP item 1) can
reuse them to fault-inject remote pool backends:

- :class:`FaultPlan` + :func:`faulty_api_run` — a programmable seam in
  front of ``api.run`` as the serve workers see it: hold jobs hostage
  behind an event (to build real queue pressure), raise a typed
  exception (execution failure), or detonate a worker-killing
  ``BaseException`` (supervision coverage);
- :func:`start_service` / :func:`live_service` — the real HTTP stack on
  an ephemeral loopback port, torn down cleanly;
- :func:`abrupt_sse_disconnect` — a raw-socket SSE client that reads a
  few frames and vanishes mid-stream (the half-close case);
- :func:`raw_response` — one raw HTTP exchange returning status,
  headers, and body (for asserting transport details like
  ``Retry-After`` that urllib-level clients normalize away).
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

import repro.api as api
from repro.serve import ServeClient, make_server


class FaultPlan:
    """Programmable faults injected into ``api.run`` as workers call it.

    Exactly one mode is active at a time; :meth:`clear` restores
    pass-through.  ``entered`` is set the moment any worker reaches the
    seam — tests use it to synchronize "the worker is now busy" without
    sleeps.  ``calls`` counts every arrival.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._mode: Optional[Tuple] = None
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()
        self.calls = 0

    # -- modes ----------------------------------------------------------
    def hold(self) -> None:
        """Make every run block until :meth:`release` (queue pressure)."""
        with self._lock:
            self._mode = ("hold",)
            self.gate.clear()

    def release(self) -> None:
        """Open the gate held by :meth:`hold` (runs proceed for real)."""
        self.gate.set()

    def fail_with(self, exc: BaseException) -> None:
        """Make every run raise ``exc``.

        An ``Exception`` exercises the normal execution-failure path; a
        ``BaseException`` (``KeyboardInterrupt``, ``SystemExit``) is a
        worker-killing fault — the supervision layer must absorb it.
        """
        with self._lock:
            self._mode = ("raise", exc)

    def clear(self) -> None:
        with self._lock:
            self._mode = None
            self.gate.set()

    # -- the seam -------------------------------------------------------
    def apply(self, real_run, *args, **kwargs):
        with self._lock:
            self.calls += 1
            mode = self._mode
        self.entered.set()
        if mode is not None:
            if mode[0] == "hold":
                if not self.gate.wait(timeout=60.0):
                    raise TimeoutError("FaultPlan gate never released")
            elif mode[0] == "raise":
                raise mode[1]
        return real_run(*args, **kwargs)


@contextlib.contextmanager
def faulty_api_run():
    """Patch ``repro.api.run`` with a :class:`FaultPlan` seam.

    The serve workers resolve ``api.run`` through the module attribute
    on every call, so the patch is live for jobs already queued.  Always
    restores the real function.
    """
    plan = FaultPlan()
    real = api.run

    def wrapped(*args, **kwargs):
        return plan.apply(real, *args, **kwargs)

    api.run = wrapped
    try:
        yield plan
    finally:
        api.run = real


# ----------------------------------------------------------------------
# service lifecycle
# ----------------------------------------------------------------------
def start_service(start_workers: bool = True, **kwargs):
    """The real HTTP stack on an ephemeral port: (server, service, url).

    ``start_workers=False`` leaves the queue undrained — submissions
    pile up deterministically (no timing games) until
    ``service.start()``.
    """
    server, service = make_server(port=0, **kwargs)
    if start_workers:
        service.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return server, service, url


@contextlib.contextmanager
def live_service(start_workers: bool = True, **kwargs):
    """Context-managed service: yields ``(client, service)``."""
    server, service, url = start_service(start_workers=start_workers, **kwargs)
    try:
        yield ServeClient(url), service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


# ----------------------------------------------------------------------
# raw-socket clients (transport-level assertions)
# ----------------------------------------------------------------------
def _connect(url: str) -> Tuple[socket.socket, str]:
    parts = urlsplit(url)
    sock = socket.create_connection((parts.hostname, parts.port), timeout=10.0)
    return sock, parts.hostname


def raw_response(
    url: str, method: str, path: str, body: Optional[bytes] = None
) -> Tuple[int, Dict[str, str], bytes]:
    """One raw HTTP/1.1 exchange: returns (status, headers, body).

    Exists because urllib folds response headers on error statuses away
    from the simple ``(status, json)`` client API — admission tests need
    to see ``Retry-After`` itself.
    """
    sock, host = _connect(url)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n"
        )
        if body is not None:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        payload = head.encode() + b"\r\n" + (body or b"")
        sock.sendall(payload)
        blob = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            blob += chunk
    finally:
        sock.close()
    head_blob, _, rest = blob.partition(b"\r\n\r\n")
    lines = head_blob.decode(errors="replace").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, rest


def abrupt_sse_disconnect(
    url: str, job_id: str, min_bytes: int = 1, until: Optional[bytes] = None
) -> bytes:
    """Open the SSE stream, read part of it, vanish.

    Reads until ≥ ``min_bytes`` arrived (and, when given, the ``until``
    marker has been seen), then closes the socket without any protocol
    goodbye while the server is (typically) still writing frames — the
    half-close the server's stream loop must absorb without disturbing
    workers or other connections.  Returns whatever was read (headers +
    leading frames).
    """
    sock, host = _connect(url)
    try:
        sock.sendall(
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: {host}\r\n\r\n".encode()
        )
        seen = b""
        while len(seen) < min_bytes or (until is not None and until not in seen):
            chunk = sock.recv(4096)
            if not chunk:
                break
            seen += chunk
    finally:
        # Hard close: best-effort RST so the server sees a reset, not a
        # graceful FIN (the nastier flavor of client disappearance).
        with contextlib.suppress(OSError):
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        sock.close()
    return seen
