"""Additional SimPoint tests: clustering behaviour and checkpoint runs."""

import numpy as np
import pytest

from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.simpoint import (
    _bbvs,
    _kmeans,
    run_with_checkpoints,
    select_checkpoints,
)
from repro.workloads.spec import make_spec_trace


class TestBBVs:
    def test_rows_l1_normalized(self):
        trace = make_spec_trace("gcc", "166", 30_000)
        mat = _bbvs(trace, 5_000)
        sums = mat.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_interval_count(self):
        trace = make_spec_trace("gcc", "166", 30_000)
        mat = _bbvs(trace, 10_000)
        assert mat.shape[0] == 3


class TestKMeans:
    def test_deterministic(self):
        rng = np.random.default_rng(0)
        data = rng.random((30, 4))
        a = _kmeans(data, 3, seed=7)
        b = _kmeans(data, 3, seed=7)
        assert (a == b).all()

    def test_separable_clusters_found(self):
        data = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 10])
        labels = _kmeans(data, 2, seed=1)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]


class TestCheckpointRuns:
    def test_run_with_checkpoints_close_to_full(self):
        """Weighted checkpoint IPC approximates the full-trace IPC."""
        cfg = default_config()
        trace = make_spec_trace("sphinx3", "an4", 60_000)

        def ipc_of(piece):
            return run_simulation(piece, cfg, None, "b", warmup_frac=0.2).ipc

        weighted = run_with_checkpoints(trace, ipc_of, interval=10_000)
        full = ipc_of(trace)
        assert weighted == pytest.approx(full, rel=0.35)

    def test_checkpoints_cover_distinct_regions(self):
        trace = make_spec_trace("gcc", "166", 80_000)
        cps = select_checkpoints(trace, interval=8_000, max_clusters=4)
        starts = [cp.start for cp in cps]
        assert len(set(starts)) == len(starts)
