"""Integration tests for L1 prefetchers inside the hierarchy, and their
interaction with the temporal prefetcher's training stream."""

from repro.cache.hierarchy import Hierarchy
from repro.prefetchers.base import L2AccessInfo, L2Prefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.base import AddressSpace, StrideComponent, build_trace


class StreamRecorder(L2Prefetcher):
    name = "recorder"

    def __init__(self):
        self.from_l1 = 0
        self.demand = 0

    def observe(self, access: L2AccessInfo):
        if access.from_l1_prefetcher:
            self.from_l1 += 1
        else:
            self.demand += 1
        return []


def stride_trace(n=20_000):
    space = AddressSpace()
    comp = StrideComponent(0x77, space, length=max(64, n), stride=1, gap=4)
    return build_trace("scan", "x", [comp], n, seed=1)


class TestL1StrideIntegration:
    def test_l1_prefetches_cover_scan(self):
        cfg = default_config()
        trace = stride_trace()
        res = run_simulation(trace, cfg, None, "baseline")
        assert res.l1_pf_issued > 1000
        # Most issued L1 prefetches are consumed by the scan.
        assert res.l1_pf_useful / res.l1_pf_issued > 0.5

    def test_scan_ipc_beats_no_prefetcher(self):
        trace = stride_trace()
        with_pf = run_simulation(trace, default_config(), None, "b")
        without = run_simulation(
            trace, default_config().with_l1_prefetcher("none"), None, "b"
        )
        assert with_pf.ipc > without.ipc

    def test_l1_requests_train_l2_stream(self):
        """Section 5.1: temporal prefetchers see L1 prefetch requests."""
        cfg = default_config()
        rec = StreamRecorder()
        h = Hierarchy(cfg, rec, StridePrefetcher(degree=4))
        for i in range(2_000):
            h.demand_access(0x77, 10_000 + i, float(i * 50))
        assert rec.from_l1 > 0
        assert rec.demand > 0

    def test_l1_useful_not_credited_to_l2_stats(self):
        cfg = default_config()
        trace = stride_trace()
        res = run_simulation(trace, cfg, None, "baseline")
        # No temporal prefetcher: every useful prefetch is the L1's.
        assert res.pf_issued == 0
        assert res.pf_useful == 0
        assert res.l1_pf_useful > 0


class TestStrideTableManagement:
    def test_table_bounded(self):
        pf = StridePrefetcher(table_size=16)
        for pc in range(64):
            pf.observe(pc, pc * 100)
        assert len(pf._table) <= 16

    def test_stride_change_relearns(self):
        pf = StridePrefetcher(degree=1)
        line = 0
        for _ in range(6):
            pf.observe(1, line)
            line += 3
        assert pf.observe(1, line) != []  # locked on stride 3
        # Switch to stride 7: confidence must rebuild before prefetching.
        out_during_switch = pf.observe(1, line + 7)
        assert out_during_switch == [] or out_during_switch[0] % 1 == 0
        for _ in range(6):
            line += 7
            out = pf.observe(1, line)
        assert out and out[0] == line + 7
