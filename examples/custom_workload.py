#!/usr/bin/env python3
"""Bring your own workload: building traces from components.

Shows how a downstream user composes the workload framework's components
into a custom trace and evaluates prefetchers on it — here, a synthetic
"database index scan" mixing B-tree-style pointer chains (temporal), a
sequential leaf scan (stride), and random tuple lookups (noise).

Run:  python examples/custom_workload.py
"""

import random

from repro.core.pipeline import OptimizedBinary
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.base import (
    AddressSpace,
    RandomComponent,
    StrideComponent,
    TemporalChainComponent,
    build_trace,
)


def main() -> None:
    config = default_config()
    rng = random.Random(42)
    space = AddressSpace()

    components = [
        # Inner B-tree nodes: revisited pointer chains, strongly temporal.
        TemporalChainComponent(0x1000, space, rng, n_chains=400, chain_len=48,
                               repeat_prob=0.9, gap=5, weight=3.0,
                               branch_prob=0.3),
        # Leaf-page scan: sequential, the L1 stride prefetcher's job.
        StrideComponent(0x2000, space, length=20_000, stride=1, gap=4,
                        weight=1.5),
        # Random tuple fetches: unpredictable noise.
        RandomComponent(0x3000, space, region_lines=1 << 16, gap=7, weight=0.8),
    ]
    trace = build_trace("btree", "demo", components, 150_000, seed=42)
    print(f"custom workload: {len(trace):,} records, "
          f"{len(set(trace.lines)):,} distinct lines")

    baseline = run_simulation(trace, config, None, "baseline")
    triangel = run_simulation(trace, config, TriangelPrefetcher(config), "tg")
    binary = OptimizedBinary.from_profile(trace, config)
    prophet = run_simulation(trace, config, binary.prefetcher(config), "prophet")

    print(f"baseline ipc={baseline.ipc:.3f}")
    print(f"triangel speedup={triangel.speedup_over(baseline):.3f} "
          f"accuracy={triangel.accuracy:.2f}")
    print(f"prophet  speedup={prophet.speedup_over(baseline):.3f} "
          f"accuracy={prophet.accuracy:.2f}")
    hinted = sum(h.insert for h in binary.hints.pc_hints.values())
    print(f"prophet hints: {len(binary.hints.pc_hints)} PCs profiled, "
          f"{hinted} pass the insertion filter, "
          f"CSR ways={binary.hints.csr.metadata_ways}")


if __name__ == "__main__":
    main()
