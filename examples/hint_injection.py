#!/usr/bin/env python3
"""Inject Prophet's hints into a binary three ways (Section 4.4).

Profiles a workload, synthesizes its binary image, and applies each of the
paper's hint-injection methods — BOLT-inserted hint instructions, x86
instruction prefixes, and reserved encoding bits — printing what each
costs in static bytes, dynamic instructions, and I-cache payload.

Run:  python examples/hint_injection.py [n_records]
"""

import sys

from repro.binary import (
    BinaryImage,
    inject_hint_instructions,
    inject_prefixes,
    inject_reserved_bits,
)
from repro.core.pipeline import OptimizedBinary
from repro.sim.config import default_config
from repro.workloads.spec import make_spec_trace


def main(n_records: int = 100_000) -> None:
    config = default_config()
    trace = make_spec_trace("omnetpp", "inp", n_records)
    binary = OptimizedBinary.from_profile(trace, config)
    hints = binary.hints.pc_hints
    misses = binary.counters.miss_counts
    print(f"workload: {trace.label}; analysis produced {len(hints)} PC hints\n")

    x86 = BinaryImage.from_trace(trace, isa="x86")
    arm = BinaryImage.from_trace(trace, isa="arm", reserved_bits_fraction=0.5)
    print(f"x86 image: {x86.n_instructions:,} instructions, "
          f"{x86.text_bytes:,} B text, {x86.icache_lines:,} I-cache lines")

    new, buffer, hb = inject_hint_instructions(x86, hints, misses)
    print(f"\nhint-buffer method: {hb.hinted_pcs} hint instructions at entry")
    print(f"  +{hb.static_bytes_added} B static, +{hb.dynamic_instructions_added} "
          f"dynamic instrs (once), {hb.hint_buffer_bytes:.0f} B hardware buffer")
    print(f"  dynamic overhead: "
          f"{hb.dynamic_instructions_added / new.dynamic_instructions(trace):.6%}")

    _, px = inject_prefixes(x86, hints, misses)
    print(f"\nx86-prefix method: {px.hinted_pcs} prefixed instructions")
    print(f"  +{px.static_bytes_added} B code, payload {px.payload_bytes:.0f} B "
          f"({px.icache_impact_fraction:.5%} of a 64 KB L1I)")

    _, rb = inject_reserved_bits(arm, hints, misses)
    total = rb.hinted_pcs + rb.dropped_pcs
    print(f"\nreserved-bits method (arm): zero overhead, but only "
          f"{rb.hinted_pcs}/{total} hinted PCs have spare encoding bits")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
