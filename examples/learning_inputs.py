#!/usr/bin/env python3
"""Learning across program inputs (the Fig. 13 workflow on gcc).

Shows why one profile is not enough — and how Prophet's Step 3 fixes it:

- a binary profiled only on gcc_166 underperforms on gcc_expr (whose
  context-dependent loads behave differently — Fig. 7's Load E — and
  whose input-specific loads were never profiled — Loads B/C);
- learning gcc_expr's counters into the same binary (Equation 4/5 merge)
  recovers the loss without hurting gcc_166.

Run:  python examples/learning_inputs.py [n_records]
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


def speedup(binary, trace, config, baseline):
    res = run_simulation(trace, config, binary.prefetcher(config), "prophet")
    return res.speedup_over(baseline)


def main(n_records: int = 150_000) -> None:
    config = default_config()
    t166 = make_spec_trace("gcc", "166", n_records)
    texpr = make_spec_trace("gcc", "expr", n_records)
    base166 = run_simulation(t166, config, None, "baseline")
    base_expr = run_simulation(texpr, config, None, "baseline")

    print("Step 1+2: profile on gcc_166 only")
    binary = OptimizedBinary.from_profile(t166, config)
    s166 = speedup(binary, t166, config, base166)
    sexpr = speedup(binary, texpr, config, base_expr)
    print(f"  gcc_166:  {s166:.3f}   gcc_expr: {sexpr:.3f}  (sub-optimal)")

    print("Step 3: learn gcc_expr's counters into the same binary")
    binary = binary.learn(texpr, config)
    s166b = speedup(binary, t166, config, base166)
    sexprb = speedup(binary, texpr, config, base_expr)
    print(f"  gcc_166:  {s166b:.3f}   gcc_expr: {sexprb:.3f}")

    print("Reference: per-input 'Direct' binaries (the learning goal)")
    d166 = speedup(OptimizedBinary.from_profile(t166, config), t166, config, base166)
    dexpr = speedup(
        OptimizedBinary.from_profile(texpr, config), texpr, config, base_expr
    )
    print(f"  gcc_166:  {d166:.3f}   gcc_expr: {dexpr:.3f}")

    print(f"\nlearning recovered "
          f"{(sexprb - sexpr) / max(1e-9, dexpr - sexpr):.0%} of the "
          f"gcc_expr gap to Direct")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150_000)
