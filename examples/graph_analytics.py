#!/usr/bin/env python3
"""Graph analytics: when does software prefetching compete? (Fig. 15)

Runs pagerank from the CRONO suite under all three schemes.  Graph
kernels are the one domain where RPG2's software prefetching works —
CSR neighbour scans are stride-analyzable — while the irregular
rank-vector accesses still need a temporal prefetcher.  The example
prints which PCs RPG2 qualified, the tuned prefetch distance, and the
per-scheme results.

Run:  python examples/graph_analytics.py [n_records]
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.prefetchers.rpg2 import identify_kernels
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.crono import make_crono_trace
from repro.experiments.common import make_rpg2


def main(n_records: int = 200_000) -> None:
    config = default_config()
    trace = make_crono_trace("pagerank_100000_100", n_records)
    print(f"workload: {trace.label}  ({len(trace):,} records)")

    baseline = run_simulation(trace, config, None, "baseline")
    print(f"baseline   ipc={baseline.ipc:.3f}")

    kernels = identify_kernels(trace.pcs, trace.lines, baseline.miss_by_pc)
    print(f"RPG2 qualified {len(kernels)} prefetch kernel(s): "
          + ", ".join(f"pc={k.pc:#x} stride={k.stride}" for k in kernels))
    rpg2 = make_rpg2(trace, config, baseline)
    if rpg2.kernels:
        distance = next(iter(rpg2.kernels.values())).distance
        print(f"binary-search tuned distance: {distance}")
    r_rpg2 = run_simulation(trace, config, rpg2, "rpg2")
    print(f"rpg2       ipc={r_rpg2.ipc:.3f}  "
          f"speedup={r_rpg2.speedup_over(baseline):.3f}")

    r_tg = run_simulation(trace, config, TriangelPrefetcher(config), "triangel")
    print(f"triangel   ipc={r_tg.ipc:.3f}  "
          f"speedup={r_tg.speedup_over(baseline):.3f}")

    binary = OptimizedBinary.from_profile(trace, config)
    r_pr = run_simulation(trace, config, binary.prefetcher(config), "prophet")
    print(f"prophet    ipc={r_pr.ipc:.3f}  "
          f"speedup={r_pr.speedup_over(baseline):.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
