#!/usr/bin/env python3
"""Characterize workloads before simulating them.

Temporal prefetching pays off only on particular memory-access shapes.
This example characterizes a SPEC persona and a CRONO kernel — reuse
distances, stride mass, Markov multi-target share — and shows how the
verdicts predict which prefetcher family wins, then round-trips a trace
through the on-disk format.

Run:  python examples/trace_analysis.py [n_records]
"""

import sys
import tempfile
from pathlib import Path

from repro.workloads.analysis import characterize, summary_table, working_set_curve
from repro.workloads.inputs import make_trace
from repro.workloads.tracefile import load_trace, save_trace


def main(n_records: int = 60_000) -> None:
    labels = ["mcf_inp", "omnetpp_inp", "pagerank_100000_100", "bfs_100000_16"]
    traces = {label: make_trace(label, n_records) for label in labels}
    characters = [characterize(t) for t in traces.values()]

    print(summary_table(characters))
    print()
    for c in characters:
        print(f"{c.label:22s} -> {c.verdict()}")

    # Working-set drift: omnetpp's event-queue reshuffles keep its windowed
    # footprint high; a stride scan's footprint is flat.
    print("\nWorking-set curve (distinct lines per 10k-record window):")
    curve = working_set_curve(traces["omnetpp_inp"].lines, window=10_000)
    for start, distinct in curve[:5]:
        print(f"  records {start:>7,}+  {distinct:,} lines")

    # Round-trip through the compact on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(traces["mcf_inp"], Path(tmp) / "mcf.npz")
        loaded = load_trace(path)
        size_kb = path.stat().st_size / 1024
        print(f"\nsaved {loaded.label}: {len(loaded):,} records in {size_kb:.0f} KB; "
              f"round-trip exact: {loaded.lines == traces['mcf_inp'].lines}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60_000)
