#!/usr/bin/env python3
"""Ablation tour: what each Prophet feature buys (the Fig. 19 walk).

Starting from the Triage4 + Triangel-metadata base, Prophet's replacement
policy, insertion policy, Multi-path Victim Buffer, and resizing are
enabled one at a time.  The walk is driven through ``repro.api``: the
registered ``fig19`` experiment, narrowed to a single workload, returns a
``BreakdownResults`` whose states are the cumulative feature steps.

Run:  python examples/ablation_tour.py [workload] [n_records]
       e.g. python examples/ablation_tour.py omnetpp 150000
"""

import sys

import repro.api as api
from repro.workloads.spec import SPEC_WORKLOADS


def canonical_label(app: str) -> str:
    """Map a bare app name to its Fig. 10 catalog label."""
    for a, inp in SPEC_WORKLOADS:
        if app == a:
            return f"{a}_{inp}"
    return app


def main(app: str = "mcf", n_records: int = 150_000) -> None:
    label = canonical_label(app)
    result = api.run("fig19", records=n_records, workloads=[label])
    breakdown = result.payload
    print(f"workload: {label}\n")
    print(f"{'state':14s} {'speedup':>8s} {'traffic':>8s}")
    for state in breakdown.speedup:
        print(f"{state:14s} {breakdown.speedup[state][label]:8.3f} "
              f"{breakdown.traffic[state][label]:8.3f}")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000
    main(app, n)
