#!/usr/bin/env python3
"""Ablation tour: what each Prophet feature buys (the Fig. 19 walk).

Starting from the Triage4 + Triangel-metadata base, enable Prophet's
replacement policy, insertion policy, Multi-path Victim Buffer, and
resizing one at a time on a single workload and watch speedup and DRAM
traffic move.

Run:  python examples/ablation_tour.py [workload] [n_records]
       e.g. python examples/ablation_tour.py omnetpp 150000
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.experiments.fig19_breakdown import STATES
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


def main(app: str = "mcf", n_records: int = 150_000) -> None:
    config = default_config()
    trace = make_spec_trace(app, None, n_records)
    baseline = run_simulation(trace, config, None, "baseline")
    print(f"workload: {trace.label}   baseline ipc={baseline.ipc:.3f}\n")
    print(f"{'state':14s} {'speedup':>8s} {'traffic':>8s} {'accuracy':>9s}")

    binary = OptimizedBinary.from_profile(trace, config)
    for name, features in STATES:
        pf = binary.prefetcher(config, features)
        res = run_simulation(trace, config, pf, name)
        print(f"{name:14s} {res.speedup_over(baseline):8.3f} "
              f"{res.traffic_over(baseline):8.3f} {res.accuracy:9.3f}")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000
    main(app, n)
