#!/usr/bin/env python3
"""Why on-chip metadata: STMS/Domino vs Triangel/Prophet on one workload.

The paper's opening argument (Sections 1 and 2.1) is that DRAM-resident
correlation metadata — the design of the first temporal prefetchers —
burns memory bandwidth that demand requests need.  This example runs the
two generations on the mcf persona and prints the trade-off directly:
coverage each scheme earns vs. the DRAM traffic (and its metadata share)
each scheme pays.

Run:  python examples/offchip_metadata.py [n_records]
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.prefetchers.offchip import DominoPrefetcher, STMSPrefetcher
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


def main(n_records: int = 150_000) -> None:
    config = default_config()
    trace = make_spec_trace("mcf", "inp", n_records)
    baseline = run_simulation(trace, config, None, "baseline")
    print(f"workload: {trace.label}  baseline ipc={baseline.ipc:.3f}\n")
    print(f"{'scheme':<10} {'speedup':>8} {'coverage':>9} {'traffic':>8} "
          f"{'meta share':>11}")

    binary = OptimizedBinary.from_profile(trace, config)
    schemes = [
        ("stms", STMSPrefetcher(degree=4)),
        ("domino", DominoPrefetcher(degree=4)),
        ("triangel", TriangelPrefetcher(config)),
        ("prophet", binary.prefetcher(config)),
    ]
    for name, pf in schemes:
        r = run_simulation(trace, config, pf, name)
        share = (r.dram_metadata_traffic / r.dram_traffic) if r.dram_traffic else 0.0
        print(f"{name:<10} {r.speedup_over(baseline):>8.3f} "
              f"{r.coverage_over(baseline):>9.3f} "
              f"{r.traffic_over(baseline):>8.3f} {share:>11.3f}")

    print("\nOff-chip schemes mine the same temporal patterns but pay for")
    print("every index probe and history fetch in channel bandwidth; on the")
    print("paper's single LPDDR5 channel that contention swamps their gains,")
    print("which is exactly why Triage moved the metadata table on chip.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150_000)
