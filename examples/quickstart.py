#!/usr/bin/env python3
"""Quickstart: profile a workload, build an optimized binary, measure.

This walks the full Prophet workflow from Fig. 5 on one workload:

1. build the mcf persona trace (the paper's strongest temporal workload);
2. run the no-temporal-prefetcher baseline and the Triangel runtime
   prefetcher for reference;
3. Step 1+2 — profile under the simplified temporal prefetcher and
   analyze the counters into hints (an "optimized binary");
4. run the optimized binary with Prophet and compare.

Run:  python examples/quickstart.py [n_records]
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.prefetchers.triangel import TriangelPrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.spec import make_spec_trace


def main(n_records: int = 200_000) -> None:
    config = default_config()
    trace = make_spec_trace("mcf", "inp", n_records)
    print(f"workload: {trace.label}  ({len(trace):,} records, "
          f"{trace.instructions:,} instructions)")

    baseline = run_simulation(trace, config, None, "baseline")
    print(f"baseline          ipc={baseline.ipc:.3f}")

    triangel = run_simulation(trace, config, TriangelPrefetcher(config), "triangel")
    print(f"triangel          ipc={triangel.ipc:.3f}  "
          f"speedup={triangel.speedup_over(baseline):.3f}  "
          f"accuracy={triangel.accuracy:.2f}")

    # Steps 1+2: profile with the simplified TP, analyze into hints.
    binary = OptimizedBinary.from_profile(trace, config)
    hints = binary.hints
    print(f"profiled {binary.counters.n_pcs} PCs; "
          f"{sum(h.insert for h in hints.pc_hints.values())} keep their "
          f"insertion bit; CSR allocates {hints.csr.metadata_ways} LLC ways")

    prophet = run_simulation(trace, config, binary.prefetcher(config), "prophet")
    print(f"prophet           ipc={prophet.ipc:.3f}  "
          f"speedup={prophet.speedup_over(baseline):.3f}  "
          f"accuracy={prophet.accuracy:.2f}")
    print(f"prophet vs triangel: "
          f"{prophet.ipc / triangel.ipc - 1:+.1%} IPC, "
          f"{prophet.dram_traffic / triangel.dram_traffic - 1:+.1%} DRAM traffic")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
