#!/usr/bin/env python3
"""Quickstart: drive the paper's experiments through ``repro.api``.

The Experiment API is one call: pick a registered experiment, shape the
scenario (records, workloads, schemes, config overrides), and get a
structured ``ExperimentResult`` back.  This walks the essentials:

1. run the Fig. 10 comparison narrowed to the mcf persona (the paper's
   strongest temporal workload) and two schemes;
2. read typed metrics straight off the ``SuiteResults`` payload;
3. re-render the *same* result as a chart and round-trip it through
   JSON — no re-simulation;
4. change the machine with a dotted-path config override — a scenario
   matrix entry is one line, not a new module.

Run:  python examples/quickstart.py [n_records]
"""

import sys

import repro.api as api
from repro import viz


def main(n_records: int = 120_000) -> None:
    result = api.run(
        "fig10",
        records=n_records,
        workloads=["mcf_inp"],
        schemes=["triangel", "prophet"],
    )
    print(result.text())

    suite = result.payload  # the typed SuiteResults underneath
    print(f"\ntriangel speedup on mcf: {suite.speedup('mcf_inp', 'triangel'):.3f}")
    print(f"prophet  speedup on mcf: {suite.speedup('mcf_inp', 'prophet'):.3f}")

    print("\nsame result, rendered as a chart:")
    print(viz.render_result(result, "chart"))

    blob = result.to_json()
    again = api.ExperimentResult.from_json(blob)
    print(f"\nJSON round-trip ({len(blob)} bytes): geomean prophet speedup "
          f"{again.payload.geomean_speedup('prophet'):.3f}")

    # One override = one scenario-matrix point: same figure, 4 MB L3.
    big_l3 = api.run(
        "fig10", records=n_records, workloads=["mcf_inp"],
        schemes=["prophet"], overrides={"l3.size_kb": 4096},
    )
    print(f"prophet speedup with a 4 MB L3: "
          f"{big_l3.payload.speedup('mcf_inp', 'prophet'):.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 120_000)
