#!/usr/bin/env python3
"""SimPoint-style checkpoint evaluation (the paper's Section 5.1 protocol).

The paper simulates SimPoint-selected checkpoints and aggregates metrics
with the cluster weights instead of simulating whole programs.  This
example selects checkpoints from a gcc persona trace with the BBV-cluster
utility, runs each under baseline and Prophet, and compares the
weighted-aggregate speedup against the full-trace result.

Run:  python examples/simpoint_checkpoints.py [n_records]
"""

import sys

from repro.core.pipeline import OptimizedBinary
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.simpoint import select_checkpoints, weighted_aggregate
from repro.workloads.spec import make_spec_trace


def main(n_records: int = 200_000) -> None:
    config = default_config()
    trace = make_spec_trace("gcc", "166", n_records)
    binary = OptimizedBinary.from_profile(trace, config)

    checkpoints = select_checkpoints(trace, interval=20_000, max_clusters=4)
    print(f"{len(checkpoints)} checkpoints selected:")
    for cp in checkpoints:
        print(f"  records [{cp.start:,}, {cp.stop:,})  weight {cp.weight:.2f}")

    speedups = []
    for cp in checkpoints:
        piece = cp.slice_of(trace)
        base = run_simulation(piece, config, None, "baseline", warmup_frac=0.3)
        res = run_simulation(piece, config, binary.prefetcher(config),
                             "prophet", warmup_frac=0.3)
        speedups.append(res.speedup_over(base))
        print(f"  checkpoint speedup {speedups[-1]:.3f}")

    weighted = weighted_aggregate(speedups, [cp.weight for cp in checkpoints])

    full_base = run_simulation(trace, config, None, "baseline")
    full_res = run_simulation(trace, config, binary.prefetcher(config), "prophet")
    print(f"\nweighted checkpoint speedup: {weighted:.3f}")
    print(f"full-trace speedup:          {full_res.speedup_over(full_base):.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
