"""Benchmark: regenerate Fig. 11 (normalized DRAM traffic).

Paper: Prophet +18.67 %, Triangel +10.33 %, RPG2 +0.07 %.  Shape checks:
Prophet costs more traffic than Triangel but stays within ~1.4x baseline;
RPG2 is traffic-neutral on SPEC.
"""

from conftest import records, save_report

from repro.experiments import fig11_traffic

N = records(200_000)


def test_fig11_traffic(benchmark):
    results = benchmark.pedantic(
        lambda: fig11_traffic.run(N), rounds=1, iterations=1
    )
    print(save_report("fig11_traffic", results.table("traffic", "Fig. 11")))
    prophet = results.geomean_metric("prophet", "traffic")
    triangel = results.geomean_metric("triangel", "traffic")
    rpg2 = results.geomean_metric("rpg2", "traffic")
    assert 1.0 <= triangel <= prophet < 1.45
    assert abs(rpg2 - 1.0) < 0.05
