"""Benchmark: regenerate Fig. 13 (learning across gcc inputs).

Shape checks: the fully learned binary beats both the Disable state and
the first-profile-only state (geomean over all nine inputs), and learning
closes most of the gap toward the per-input Direct ideal.
"""

from conftest import records, save_report

from repro.experiments import fig13_learning_gcc

N = records(100_000)


def test_fig13_learning_gcc(benchmark):
    results = benchmark.pedantic(
        lambda: fig13_learning_gcc.run(N), rounds=1, iterations=1
    )
    print(save_report("fig13_learning_gcc", results.table("Fig. 13")))
    disable = results.geomean_of("Disable")
    first = results.geomean_of("+166")
    final = results.geomean_of("+expr2")
    direct = results.geomean_of("Direct")
    assert final > disable
    assert final >= first - 0.01  # learning never regresses overall
    # The learned binary lands close to the per-input ideal.
    assert final >= disable + 0.6 * (direct - disable)
