"""Ablation: on-chip vs DRAM-resident metadata (Sections 1 and 2.1).

The paper's motivation for on-chip metadata tables: early temporal
prefetchers (STMS HPCA'09, Domino HPCA'18) stored correlations in DRAM and
"fetching metadata from DRAM consumes a substantial amount of memory
bandwidth that could otherwise be used for demand memory accesses".  This
bench runs both generations side by side and checks the motivating shape:

- the off-chip schemes' DRAM traffic is far above the on-chip schemes';
- most of that traffic is metadata movement (on-chip schemes: none);
- Prophet beats both off-chip schemes on speedup.
"""

from conftest import records, save_report

from repro.experiments import ablation_offchip

N = records(100_000)


def test_offchip_metadata_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: ablation_offchip.run(N), rounds=1, iterations=1
    )
    print(save_report("ablation_offchip_metadata", ablation_offchip.render(results)))

    traffic = {s: results.geomean_metric(s, "traffic") for s in results.schemes}
    assert traffic["stms"] > traffic["triangel"]
    assert traffic["domino"] > traffic["triangel"]
    assert traffic["stms"] > traffic["prophet"]
    # MISB's on-chip index cache lands it between the generations.
    assert traffic["triangel"] < traffic["misb"] < traffic["stms"]

    share_stms = ablation_offchip.metadata_traffic_share(results, "stms")
    share_triangel = ablation_offchip.metadata_traffic_share(results, "triangel")
    assert share_stms > 0.3
    assert share_triangel == 0.0

    speedups = {s: results.geomean_speedup(s) for s in results.schemes}
    assert speedups["prophet"] > speedups["stms"]
    assert speedups["prophet"] > speedups["domino"]
