"""Benchmark: regenerate Fig. 12 (prefetching coverage and accuracy).

Paper: Prophet coverage 42.75 % vs Triangel 28.08 %, with comparable
accuracy — the gain comes from metadata management, not aggressiveness.
"""

from conftest import records, save_report

from repro.experiments import fig12_coverage_accuracy

N = records(200_000)


def test_fig12_coverage_accuracy(benchmark):
    results = benchmark.pedantic(
        lambda: fig12_coverage_accuracy.run(N), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            results.table("coverage", "Fig. 12a"),
            results.table("accuracy", "Fig. 12b"),
        ]
    )
    print(save_report("fig12_coverage_accuracy", text))
    # Prophet removes more demand misses than Triangel...
    labels = results.labels
    pr_cov = sum(results.coverage(wl, "prophet") for wl in labels) / len(labels)
    tg_cov = sum(results.coverage(wl, "triangel") for wl in labels) / len(labels)
    assert pr_cov > tg_cov
    # ...at comparable (not worse) accuracy.
    pr_acc = sum(results.accuracy(wl, "prophet") for wl in labels) / len(labels)
    tg_acc = sum(results.accuracy(wl, "triangel") for wl in labels) / len(labels)
    assert pr_acc >= tg_acc - 0.05
