"""Benchmark: Section 4.4 hint-injection method costs on synthesized images.

The paper's claims: at most 128 hint instructions (hint-buffer method,
executed once -> negligible dynamic overhead), a 3-bit prefix per hinted
instruction (48 B payload at the cap, negligible vs a 64 KB L1I), and
zero-cost but applicability-limited reserved bits.
"""

from conftest import records, save_report

from repro.core.hints import HINT_BUFFER_ENTRIES
from repro.experiments import injection

N = records(80_000)


def test_injection_methods(benchmark):
    measured = benchmark.pedantic(
        lambda: injection.measure(N), rounds=1, iterations=1
    )
    print(save_report("injection_methods", injection.report(N)))
    for label, w in measured.items():
        # Hint-buffer method: bounded instruction count, executed once.
        assert w.hint_buffer.hinted_pcs <= HINT_BUFFER_ENTRIES
        assert w.dynamic_overhead(w.hint_buffer) < 0.01
        # Prefix method: no extra instructions; payload under the paper's
        # 48 B cap; I-cache impact negligible.
        assert w.prefix.dynamic_instructions_added == 0
        assert w.prefix.payload_bytes <= 48.0
        assert w.prefix.icache_impact_fraction < 0.001
        # Reserved bits: free.
        assert w.reserved.static_bytes_added == 0
    # Reach is partial at the modeled 50 % encoding availability: across
    # the suite some hinted PCs must be dropped.
    assert sum(w.reserved.dropped_pcs for w in measured.values()) > 0
