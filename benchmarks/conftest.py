"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and saves
the rendered rows under ``benchmarks/results/`` so the output survives
pytest's capture.  Record counts are sized for laptop runtimes; export
``REPRO_BENCH_RECORDS`` to scale every benchmark up or down (1.0 = the
defaults below).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Every benchmark regenerates a full figure: mark them all slow.

    CI's fast lane runs ``pytest -m "not slow"`` (the tests/ suite) and
    covers the figures via the engine microbenchmark's smoke mode.
    (The hook sees the whole session's items, so scope to this directory.)
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)
RESULTS_DIR.mkdir(exist_ok=True)

#: Global scale knob for benchmark trace lengths.
SCALE = float(os.environ.get("REPRO_BENCH_RECORDS", "1.0"))


def records(n: int) -> int:
    """Apply the global scale to a benchmark's default record count."""
    return max(20_000, int(n * SCALE))


def save_report(name: str, text: str) -> str:
    """Persist a figure's rendered rows; returns the text for printing."""
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
