"""Ablation bench: fixed metadata-table sizes (Section 2.1.3's claim).

"Incorrect resizing can significantly degrade performance": no single
fixed table size is best for every workload, and the per-workload oracle
(what Prophet's profile-derived CSR hint approximates) beats every fixed
choice.
"""

from conftest import records, save_report

from repro.experiments import ablation_ways

# 250k records, not 100k: at 100k the synthetic personas' temporal
# working sets all fit the 2-way table, so every workload ties at
# ways=2 (bigger tables only pay the LLC-capacity cost) and the
# "workloads disagree about the best size" assertion fails.  The
# disagreement the paper observes needs enough trace for the
# big-footprint workloads (mcf, omnetpp, astar) to overflow 2 ways —
# measured at 250k they prefer ways=4 while sphinx3 still prefers 2.
# Root-caused 2026-08: a trace-length sizing bug in this harness, not a
# model property; the sweep itself honors the size knob at any length.
N = records(250_000)


def test_ways_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: ablation_ways.sweep(N), rounds=1, iterations=1
    )
    print(save_report("ablation_ways", ablation_ways.render(results)))
    gm = ablation_ways.geomean_by_ways(results)
    best = ablation_ways.best_ways(results)
    oracle = ablation_ways.oracle_geomean(results)
    # A metadata table earns real speedup at some size.
    assert max(gm.values()) > 1.02
    # The per-workload oracle beats (or ties) every fixed choice — the
    # headroom Prophet's per-application resizing hint captures.
    assert oracle >= max(gm.values())
    # Workloads genuinely disagree about the best size.
    assert len(set(best.values())) > 1
