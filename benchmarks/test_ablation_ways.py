"""Ablation bench: fixed metadata-table sizes (Section 2.1.3's claim).

"Incorrect resizing can significantly degrade performance": no single
fixed table size is best for every workload, and the per-workload oracle
(what Prophet's profile-derived CSR hint approximates) beats every fixed
choice.
"""

from conftest import records, save_report

from repro.experiments import ablation_ways

N = records(100_000)


def test_ways_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: ablation_ways.sweep(N), rounds=1, iterations=1
    )
    print(save_report("ablation_ways", ablation_ways.render(results)))
    gm = ablation_ways.geomean_by_ways(results)
    best = ablation_ways.best_ways(results)
    oracle = ablation_ways.oracle_geomean(results)
    # A metadata table earns real speedup at some size.
    assert max(gm.values()) > 1.02
    # The per-workload oracle beats (or ties) every fixed choice — the
    # headroom Prophet's per-application resizing hint captures.
    assert oracle >= max(gm.values())
    # Workloads genuinely disagree about the best size.
    assert len(set(best.values())) > 1
