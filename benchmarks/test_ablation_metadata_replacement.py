"""Ablation: metadata-table replacement policy (Section 2.1.2).

The paper notes Triage's Hawkeye replacement buys < 0.25 % over simpler
policies at a 13 KB cost, which is why Triangel switched to SRRIP.  This
bench runs Triage-degree-4 with LRU / SRRIP / Hawkeye metadata replacement
and checks that the choice of runtime replacement policy moves performance
far less than Prophet's profile-guided priorities do (Fig. 19's +Repla).
"""

from conftest import records, save_report

from repro.prefetchers.triage import TriagePrefetcher
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.sim.results import format_table, geomean
from repro.workloads.spec import SPEC_WORKLOADS, make_spec_trace

N = records(120_000)
POLICIES = ["lru", "srrip", "hawkeye"]


def run_ablation():
    cfg = default_config()
    speedups = {p: [] for p in POLICIES}
    labels = []
    rows = []
    for app, inp in SPEC_WORKLOADS:
        trace = make_spec_trace(app, inp, N)
        base = run_simulation(trace, cfg, None, "baseline")
        row = [trace.label]
        for policy in POLICIES:
            pf = TriagePrefetcher(
                cfg, degree=4, replacement=policy,
                initial_ways=cfg.l3.assoc // 2, resize_enabled=False,
            )
            res = run_simulation(trace, cfg, pf, f"triage4-{policy}")
            s = res.speedup_over(base)
            speedups[policy].append(s)
            row.append(f"{s:.3f}")
        rows.append(row)
        labels.append(trace.label)
    rows.append(["Geomean"] + [f"{geomean(speedups[p]):.3f}" for p in POLICIES])
    table = format_table(
        ["workload"] + POLICIES, rows, "Metadata replacement ablation"
    )
    return speedups, table


def test_metadata_replacement_ablation(benchmark):
    speedups, table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(save_report("ablation_metadata_replacement", table))
    means = {p: geomean(speedups[p]) for p in POLICIES}
    # Runtime replacement policies are within a few percent of each other
    # (the paper's <0.25% Hawkeye-over-SRRIP observation, loosely).
    assert max(means.values()) - min(means.values()) < 0.06
