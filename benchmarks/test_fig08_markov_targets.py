"""Benchmark: regenerate Fig. 8 (Markov target count distribution).

Paper: 54.85 % / 20.88 % / 9.71 % of addresses have 1 / 2 / 3 targets.
Shape checks: single-target addresses are the (near-)majority, a
substantial multi-target tail exists, and the distribution is monotone
decreasing in T.
"""

from conftest import records, save_report

from repro.experiments import fig08_markov_targets

N = records(120_000)


def test_fig08_markov_targets(benchmark):
    dists = benchmark.pedantic(
        lambda: fig08_markov_targets.measure(N), rounds=1, iterations=1
    )
    print(save_report("fig08_markov_targets", fig08_markov_targets.render(dists)))
    overall = dists["all"]
    assert overall[1] > 0.4  # T=1 dominates
    multi = 1.0 - overall[1]
    # The paper's multi-target share is ~45 %; the synthetic personas
    # produce a thinner but still material tail (~15 %, see EXPERIMENTS.md
    # "Known deviations") — the MVB's food supply exists either way.
    assert multi > 0.10
    assert overall[1] > overall[2] > overall[3]
