"""Benchmark: Table 1 system-configuration consistency.

Verifies the simulated machine matches the paper's configuration and
measures baseline simulator throughput (records/second) as the harness's
reference cost metric.
"""

from conftest import records, save_report

from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.sim.results import format_table
from repro.workloads.spec import make_spec_trace

N = records(60_000)


def test_table1_config(benchmark):
    cfg = default_config()
    rows = [
        ["Core issue width", cfg.core.issue_width, 10],
        ["ROB entries", cfg.core.rob_entries, 288],
        ["L1D size (KB)", cfg.l1d.size_bytes // 1024, 64],
        ["L1D assoc", cfg.l1d.assoc, 4],
        ["L2 size (KB)", cfg.l2.size_bytes // 1024, 512],
        ["L2 assoc", cfg.l2.assoc, 8],
        ["L2 MSHRs", cfg.l2.mshrs, 32],
        ["L3 size (MB)", cfg.l3.size_bytes // (1024 * 1024), 2],
        ["L3 assoc", cfg.l3.assoc, 16],
        ["DRAM channels", cfg.dram.channels, 1],
    ]
    print(save_report(
        "table1_config",
        format_table(["parameter", "model", "paper"], rows, "Table 1"),
    ))
    for _name, model, paper in rows:
        assert model == paper

    trace = make_spec_trace("xalancbmk", "ref", N)
    result = benchmark.pedantic(
        lambda: run_simulation(trace, cfg, None, "baseline"),
        rounds=1,
        iterations=1,
    )
    assert result.cycles > 0
