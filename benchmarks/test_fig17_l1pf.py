"""Benchmark: regenerate Fig. 17 (IPCP as the L1 prefetcher).

Paper: Prophet 29.95 % > Triangel 17.51 % > RPG2 0.36 %.  Shape check:
the ordering survives a stronger L1 prefetcher.
"""

from conftest import records, save_report

from repro.experiments import fig17_l1_prefetcher

N = records(150_000)


def test_fig17_ipcp(benchmark):
    results = benchmark.pedantic(
        lambda: fig17_l1_prefetcher.run(N), rounds=1, iterations=1
    )
    print(save_report("fig17_l1pf", results.table("speedup", "Fig. 17")))
    prophet = results.geomean_speedup("prophet")
    triangel = results.geomean_speedup("triangel")
    rpg2 = results.geomean_speedup("rpg2")
    assert prophet > triangel > rpg2
    assert prophet > 1.1
