"""Benchmark: regenerate Fig. 1 (metadata access pattern, omnetpp).

Shape checks: useful and useless metadata accesses interleave (both dots
present in volume), genuine first-accesses-with-pattern exist, and
Triangel's PatternConf spends real time below its threshold, rejecting
some of those useful insertions.
"""

from conftest import records, save_report

from repro.experiments import fig01_pattern

N = records(120_000)


def test_fig01_metadata_pattern(benchmark):
    analysis = benchmark.pedantic(
        lambda: fig01_pattern.analyze_pattern(N), rounds=1, iterations=1
    )
    print(save_report("fig01_metadata_pattern", fig01_pattern.report(N)))
    counts = analysis.counts
    assert counts.get("blue_dot", 0) > 100
    assert counts.get("red_dot", 0) > 100
    assert counts.get("blue_star", 0) > 0
    assert analysis.time_below_threshold > 0.0
    assert analysis.rejected_useful_insertions > 0
