"""Ablation bench: prefetch degree vs metadata-management polish.

Reproduces the Section 1 observation that aggressive prefetching (degree
1 -> 4) is where the hardware temporal prefetcher's gain comes from,
dwarfing replacement-policy refinements (compare the ablation in
``test_ablation_metadata_replacement.py``, whose policies sit within a
few percent of each other).
"""

from conftest import records, save_report

from repro.experiments import ablation_degree

N = records(100_000)


def test_degree_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: ablation_degree.sweep(N), rounds=1, iterations=1
    )
    print(save_report("ablation_degree", ablation_degree.render(results)))
    gm = ablation_degree.geomean_by_degree(results, "speedup")
    # Aggressiveness is the big lever: degree 4 well above degree 1.
    assert gm[4] > gm[1] + 0.02
    assert gm[2] > gm[1]
    # Traffic grows monotonically with degree (the cost of aggression).
    tr = ablation_degree.geomean_by_degree(results, "traffic")
    assert tr[8] >= tr[4] >= tr[2] >= tr[1]
    # Returns flatten: the 4->8 step is smaller than the 1->4 step.
    assert gm[8] - gm[4] < gm[4] - gm[1]
