"""Benchmark: Section 5.10 storage-overhead accounting.

Checks our structures' arithmetic against the paper's reported sizes:
48 KB replacement state, 0.19 KB hint buffer, 344 KB MVB.
"""

import pytest
from conftest import save_report

from repro.experiments import storage


def test_storage_overhead(benchmark):
    measured = benchmark.pedantic(storage.measure, rounds=1, iterations=1)
    print(save_report("storage_overhead", storage.report()))
    assert measured["replacement_state_kb"] == pytest.approx(48.0)
    assert measured["hint_buffer_kb"] == pytest.approx(0.19, abs=0.02)
    assert measured["mvb_kb"] == pytest.approx(344.0, rel=0.01)
