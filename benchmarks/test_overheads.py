"""Benchmark: Section 5.4 profiling / analysis / instruction overheads.

Shape checks: counters are byte-sized (not the ~GB of trace profiling),
analysis completes well under the paper's one-second bound, and hint
instructions are a vanishing fraction of total instructions.
"""

from conftest import records, save_report

from repro.experiments import overhead

N = records(80_000)


def test_overheads(benchmark):
    reports = benchmark.pedantic(
        lambda: overhead.measure(N), rounds=1, iterations=1
    )
    print(save_report("overheads", overhead.report(N)))
    for label, r in reports.items():
        assert r.counter_bytes < 64 * 1024, label  # bytes, not gigabytes
        assert r.analysis_seconds < 1.0, label  # the paper's bound
        assert r.hint_instructions <= 128, label
        assert r.instruction_overhead < 1e-3, label
