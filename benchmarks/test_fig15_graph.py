"""Benchmark: regenerate Fig. 15 (CRONO graph workloads).

Paper: Prophet 14.85 % > RPG2 9.11 % > Triangel 8.41 %.  Shape checks:
all three schemes gain on graphs; RPG2 is *competitive* here (unlike on
SPEC, where it is ~1.0) because the CSR scans are stride-analyzable; and
Prophet still leads the suite.
"""

from conftest import records, save_report

from repro.experiments import fig15_graph

# CRONO graphs scale with trace length; below ~200k records the scaled
# graphs fit too much of the LLC and Prophet's cross-iteration gains
# vanish while RPG2's stride gains persist — 240k reproduces the paper's
# ordering (measured: Prophet 1.157 > RPG2 1.096 > Triangel 1.051).
N = records(240_000)


def test_fig15_graph(benchmark):
    results = benchmark.pedantic(
        lambda: fig15_graph.run(N), rounds=1, iterations=1
    )
    print(save_report("fig15_graph", results.table("speedup", "Fig. 15")))
    prophet = results.geomean_speedup("prophet")
    triangel = results.geomean_speedup("triangel")
    rpg2 = results.geomean_speedup("rpg2")
    assert prophet > max(rpg2, triangel)
    assert rpg2 > 1.03  # software prefetching genuinely works on graphs
    assert triangel > 1.0
