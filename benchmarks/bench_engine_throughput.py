"""Engine throughput microbenchmark: records/sec for the simulation loop.

Measures how fast :func:`repro.sim.engine.run_simulation` drives records
through the cache hierarchy, for the two configurations that bracket the
engine's cost:

- **baseline** — no L2 temporal prefetcher (the cheapest per-record path);
- **prophet**  — profile + simulate under Prophet (the most expensive
  path: metadata table training, MVB, resize polling).

Results are written to ``BENCH_engine.json`` next to this file (override
with ``--out``) so successive PRs accumulate a perf trajectory; compare
the ``records_per_sec`` fields across commits on the same machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --records 200000 --repeats 5 --out /tmp/bench.json

``--smoke`` shrinks the run for CI: it validates that the benchmark still
executes end to end, not that the numbers are meaningful.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.pipeline import OptimizedBinary
from repro.sim.config import default_config
from repro.sim.engine import run_simulation
from repro.workloads.inputs import make_trace

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_engine.json"

#: Workload used for all measurements: mcf-like pointer chasing exercises
#: the full miss path (L1/L2/L3/DRAM) rather than degenerating to L1 hits.
BENCH_WORKLOAD = "mcf_inp"


def _measure(fn, n_records: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock throughput for one engine setup."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "seconds_best": best,
        "seconds_all": times,
        "records": n_records,
        "records_per_sec": n_records / best if best else 0.0,
    }


def run_bench(n_records: int, repeats: int) -> dict:
    config = default_config()
    trace = make_trace(BENCH_WORKLOAD, n_records)

    def baseline() -> None:
        run_simulation(trace, config, None, "baseline")

    binary = OptimizedBinary.from_profile(trace, config)

    def prophet() -> None:
        run_simulation(trace, config, binary.prefetcher(config), "prophet")

    return {
        "workload": BENCH_WORKLOAD,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": _measure(baseline, n_records, repeats),
        "prophet": _measure(prophet, n_records, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=150_000,
                        help="trace length per measured run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per configuration (best is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI: checks execution, not perf")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    n_records = 5_000 if args.smoke else args.records
    repeats = 1 if args.smoke else args.repeats
    result = run_bench(n_records, repeats)
    result["smoke"] = args.smoke

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    for kind in ("baseline", "prophet"):
        rps = result[kind]["records_per_sec"]
        print(f"{kind:9s} {rps:>12,.0f} records/sec "
              f"({result[kind]['seconds_best']:.2f}s best of {repeats})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
