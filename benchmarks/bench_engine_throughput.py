"""Engine throughput microbenchmark: records/sec for the simulation loop.

Measures how fast :func:`repro.sim.engine.run_simulation` drives records
through the cache hierarchy, for the two configurations that bracket the
engine's cost:

- **baseline** — no L2 temporal prefetcher (the cheapest per-record path);
- **prophet**  — profile + simulate under Prophet (the most expensive
  path: metadata table training, MVB, resize polling).

The **prophet_path** section tracks the Prophet model fast path
specifically, by measuring three rungs of the same simulation on the same
trace with repeats interleaved (so slow machine-load drift hits all rungs
equally):

- ``packed``          — packed model + fused observe + optimized loop
  (what ``run_simulation`` ships);
- ``reference_model`` — the preserved pre-packing model
  (``ProphetPrefetcherReference``) under the optimized loop;
- ``seed_equivalent`` — reference model under the seed-era loop
  (``run_simulation_reference``), the closest in-tree proxy for the
  pre-PR-1 implementation.

All three produce bit-identical SimResults (pinned by
``tests/test_packed_model_equivalence.py``); only the speed differs.

The **fill_path** section tracks the flat-array cache & fused fill-spill
kernel specifically, racing the shipping hierarchy against the preserved
reference classes (``repro.cache.reference.HierarchyReference``: slot
records, three-call fill-spill chain) under the *same* optimized loop,
on both bracketing configs:

- ``baseline_flat`` / ``baseline_reference`` — no L2 prefetcher;
- ``prophet_flat`` / ``prophet_reference``   — Prophet end to end.

All four rungs are interleaved in one round-robin, so the two
``speedup_flat_vs_reference_*`` ratios are machine-independent; both are
gated by ``--check`` (floors committed in ``BENCH_engine.json``).  Flat
and reference are bit-identical in output
(``tests/test_flat_cache_equivalence.py``).

The **batched** section tracks the numpy record-batch engine
(:func:`repro.sim.engine.run_simulation_batched`) on its target regime —
an L1-resident workload (``gen_hot_l1``) whose long hit runs the
vectorized pre-pass retires wholesale — racing batched vs flat vs seed
rungs on the no-prefetcher baseline, plus batched vs flat under Prophet,
all interleaved.  ``speedup_batched_vs_flat_baseline`` is the headline
gated ratio; a ``spec_workload`` sub-section reports the same
batched-vs-flat ratio on the pointer-chasing ``mcf_inp`` persona
(scattered misses, runs below the retirement threshold) where the
batched rung is expected to track the flat rung, not beat it — reported
for trajectory, never gated.  All rungs are bit-identical in output
(``tests/test_batched_engine_equivalence.py``).

Results are written to ``BENCH_engine.json`` next to this file (override
with ``--out``) so successive PRs accumulate a perf trajectory; compare
the ``records_per_sec`` fields across commits on the same machine.
Hand-maintained calibration sections already present in the output file
(``seed_reference``, ``seed_commit``, ``pr4_commit``, ``floors``) are
preserved across runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --records 200000 --repeats 5 --out /tmp/bench.json
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --records 40000 --repeats 2 --check --out /tmp/bench-gate.json

``--smoke`` shrinks the run for CI: it validates that the benchmark still
executes end to end, not that the numbers are meaningful.

``--check`` is the CI regression gate: the fresh run's *intra-run speed
ratios* are compared against the floors committed in
``BENCH_engine.json`` (the ``floors`` section, falling back to the
committed run's own ratios) and the process exits non-zero on a
>``--tolerance`` (default 30%) regression.  Gating on ratios measured
within one run — packed model vs the preserved reference rungs,
interleaved so load drift cancels — keeps the gate meaningful on CI
machines that are much slower or faster than the reference machine,
where absolute records/sec floors would be pure noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.cache.reference import HierarchyReference
from repro.core.pipeline import OptimizedBinary
from repro.sim.config import default_config
from repro.sim.engine import (
    run_simulation,
    run_simulation_batched,
    run_simulation_reference,
)
from repro.workloads.inputs import make_trace

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_engine.json"

#: Workload used for all measurements: mcf-like pointer chasing exercises
#: the full miss path (L1/L2/L3/DRAM) rather than degenerating to L1 hits.
BENCH_WORKLOAD = "mcf_inp"

#: Workload for the batched-engine section: an L1-resident, conflict-free
#: pointer chase whose measure phase is nearly all L1 hits — the run
#: structure the vectorized pre-pass exists to exploit.
BATCHED_WORKLOAD = "gen_hot_l1"

#: Sections of the output file that are maintained by hand (calibration
#: notes, seed-commit measurements, regression floors) and must survive
#: a rerun.
PRESERVED_SECTIONS = ("seed_reference", "seed_commit", "pr4_commit",
                      "floors")

#: Default allowed regression for ``--check`` before the gate fails.
#: Generous on purpose: the ratios are intra-run (machine-independent)
#: but CI smoke runs are short, so they still carry sampling noise.
REGRESSION_TOLERANCE = 0.30


def _measure(fn, n_records: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock throughput for one engine setup."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    best = min(times)
    return {
        "seconds_best": best,
        "seconds_all": times,
        "records": n_records,
        "records_per_sec": n_records / best if best else 0.0,
    }


def _measure_interleaved(named_fns, n_records: int, repeats: int) -> dict:
    """Best-of-``repeats`` per configuration, repeats round-robined.

    Interleaving makes the *ratios* between configurations robust against
    slow machine-load drift: every configuration samples every load
    window.
    """
    times = {name: [] for name, _ in named_fns}
    for _ in range(repeats):
        for name, fn in named_fns:
            start = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - start)
    out = {}
    for name, _ in named_fns:
        best = min(times[name])
        out[name] = {
            "seconds_best": best,
            "seconds_all": times[name],
            "records": n_records,
            "records_per_sec": n_records / best if best else 0.0,
        }
    return out


def run_bench(n_records: int, repeats: int,
              batch_size: int | None = None) -> dict:
    config = default_config()
    trace = make_trace(BENCH_WORKLOAD, n_records)

    def baseline() -> None:
        run_simulation(trace, config, None, "baseline")

    binary = OptimizedBinary.from_profile(trace, config)

    def prophet() -> None:
        run_simulation(trace, config, binary.prefetcher(config), "prophet")

    def prophet_reference_model() -> None:
        run_simulation(
            trace, config, binary.prefetcher_reference(config), "prophet"
        )

    def prophet_seed_equivalent() -> None:
        run_simulation_reference(
            trace, config, binary.prefetcher_reference(config), "prophet"
        )

    result = {
        "workload": BENCH_WORKLOAD,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": _measure(baseline, n_records, repeats),
        "prophet": _measure(prophet, n_records, repeats),
    }

    path = _measure_interleaved(
        [
            ("packed", prophet),
            ("reference_model", prophet_reference_model),
            ("seed_equivalent", prophet_seed_equivalent),
        ],
        n_records,
        repeats,
    )
    packed_rps = path["packed"]["records_per_sec"]
    path["note"] = (
        "Prophet model fast path: packed/fused vs the preserved reference "
        "model (optimized loop) vs reference model on the seed-era loop; "
        "repeats interleaved so machine-load drift cancels in the ratios. "
        "All three are bit-identical in output."
    )
    path["speedup_packed_vs_reference_model"] = round(
        packed_rps / path["reference_model"]["records_per_sec"], 3
    )
    path["speedup_packed_vs_seed_equivalent"] = round(
        packed_rps / path["seed_equivalent"]["records_per_sec"], 3
    )
    result["prophet_path"] = path

    def baseline_reference() -> None:
        run_simulation(
            trace, config, None, "baseline", hierarchy_cls=HierarchyReference
        )

    def prophet_reference_hierarchy() -> None:
        run_simulation(
            trace, config, binary.prefetcher(config), "prophet",
            hierarchy_cls=HierarchyReference,
        )

    fill = _measure_interleaved(
        [
            ("baseline_flat", baseline),
            ("baseline_reference", baseline_reference),
            ("prophet_flat", prophet),
            ("prophet_reference", prophet_reference_hierarchy),
        ],
        n_records,
        repeats,
    )
    fill["note"] = (
        "Flat-array cache & fused fill-spill kernel vs the preserved "
        "reference hierarchy (slot records, three-call fill-spill chain), "
        "same optimized loop, repeats interleaved across all four rungs. "
        "Flat and reference are bit-identical in output."
    )
    fill["speedup_flat_vs_reference_baseline"] = round(
        fill["baseline_flat"]["records_per_sec"]
        / fill["baseline_reference"]["records_per_sec"], 3
    )
    fill["speedup_flat_vs_reference_prophet"] = round(
        fill["prophet_flat"]["records_per_sec"]
        / fill["prophet_reference"]["records_per_sec"], 3
    )
    result["fill_path"] = fill

    hot_trace = make_trace(BATCHED_WORKLOAD, n_records)
    hot_binary = OptimizedBinary.from_profile(hot_trace, config)

    def hot_batched() -> None:
        run_simulation_batched(
            hot_trace, config, None, "baseline", batch_size=batch_size
        )

    def hot_flat() -> None:
        run_simulation(hot_trace, config, None, "baseline")

    def hot_reference() -> None:
        run_simulation_reference(hot_trace, config, None, "baseline")

    def hot_prophet_batched() -> None:
        run_simulation_batched(
            hot_trace, config, hot_binary.prefetcher(config), "prophet",
            batch_size=batch_size,
        )

    def hot_prophet_flat() -> None:
        run_simulation(
            hot_trace, config, hot_binary.prefetcher(config), "prophet"
        )

    batched = _measure_interleaved(
        [
            ("baseline_batched", hot_batched),
            ("baseline_flat", hot_flat),
            ("baseline_reference", hot_reference),
            ("prophet_batched", hot_prophet_batched),
            ("prophet_flat", hot_prophet_flat),
        ],
        n_records,
        repeats,
    )
    batched["workload"] = BATCHED_WORKLOAD
    batched["batch_size"] = batch_size
    batched["note"] = (
        "Numpy record-batch engine vs the flat scalar loop vs the seed "
        "loop on an L1-resident trace (long retirable hit runs), plus "
        "batched vs flat under Prophet; repeats interleaved across all "
        "rungs.  All rungs are bit-identical in output; batch_size is a "
        "throughput knob only (null = engine default)."
    )
    batched["speedup_batched_vs_flat_baseline"] = round(
        batched["baseline_batched"]["records_per_sec"]
        / batched["baseline_flat"]["records_per_sec"], 3
    )
    batched["speedup_batched_vs_reference_baseline"] = round(
        batched["baseline_batched"]["records_per_sec"]
        / batched["baseline_reference"]["records_per_sec"], 3
    )
    batched["speedup_batched_vs_flat_prophet"] = round(
        batched["prophet_batched"]["records_per_sec"]
        / batched["prophet_flat"]["records_per_sec"], 3
    )

    def spec_batched() -> None:
        run_simulation_batched(
            trace, config, None, "baseline", batch_size=batch_size
        )

    spec = _measure_interleaved(
        [("batched", spec_batched), ("flat", baseline)], n_records, repeats
    )
    spec["workload"] = BENCH_WORKLOAD
    spec["ratio_batched_vs_flat"] = round(
        spec["batched"]["records_per_sec"] / spec["flat"]["records_per_sec"],
        3,
    )
    spec["note"] = (
        "Informational only, never gated: a scattered-miss persona whose "
        "hit runs sit below the retirement threshold, so the batched "
        "rung is expected to track the flat rung (~1.0), not beat it."
    )
    batched["spec_workload"] = spec
    result["batched"] = batched
    return result


def _ratio_metrics(result: dict) -> dict:
    """The machine-independent speed ratios of one benchmark run."""
    path = result["prophet_path"]
    metrics = {
        "speedup_packed_vs_reference_model":
            path["speedup_packed_vs_reference_model"],
        "speedup_packed_vs_seed_equivalent":
            path["speedup_packed_vs_seed_equivalent"],
        "baseline_over_prophet":
            result["baseline"]["records_per_sec"]
            / result["prophet"]["records_per_sec"],
    }
    fill = result.get("fill_path")
    if fill is not None:
        metrics["fill_path_flat_vs_reference_baseline"] = (
            fill["speedup_flat_vs_reference_baseline"]
        )
        metrics["fill_path_flat_vs_reference_prophet"] = (
            fill["speedup_flat_vs_reference_prophet"]
        )
    batched = result.get("batched")
    if batched is not None:
        metrics["batched_vs_flat_baseline"] = (
            batched["speedup_batched_vs_flat_baseline"]
        )
        metrics["batched_vs_flat_prophet"] = (
            batched["speedup_batched_vs_flat_prophet"]
        )
    return metrics


#: Ratios built from separately measured blocks rather than interleaved
#: repeats: a machine-load spike during one block skews them, so they are
#: reported for information but never auto-derived as gate floors.
NON_INTERLEAVED_RATIOS = ("baseline_over_prophet",)


def check_floors(result: dict, committed: dict, tolerance: float) -> list:
    """Compare ``result``'s ratios against the committed floors.

    Returns a list of human-readable failure strings (empty = pass).
    Floors come from the ``floors`` section of ``committed``; when the
    section is absent, the committed run's own *interleaved* ratios
    serve as floors (non-interleaved ratios are too load-drift-fragile
    to gate on — an explicitly committed floor is still honored).
    """
    floors = dict(committed.get("floors") or {})
    if not floors:
        try:
            floors = _ratio_metrics(committed)
        except (KeyError, TypeError, ZeroDivisionError):
            return ["committed benchmark file has neither a 'floors' "
                    "section nor usable run ratios to derive them from"]
        for name in NON_INTERLEAVED_RATIOS:
            floors.pop(name, None)
    current = _ratio_metrics(result)
    failures = []
    for name, floor in floors.items():
        if not isinstance(floor, (int, float)):
            continue  # the "note" field
        value = current.get(name)
        if value is None:
            continue
        minimum = floor * (1.0 - tolerance)
        if value < minimum:
            failures.append(
                f"{name}: {value:.3f} is below floor {floor:.3f} "
                f"- {tolerance:.0%} = {minimum:.3f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=150_000,
                        help="trace length per measured run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per configuration (best is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI: checks execution, not perf")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when the run's speed ratios "
                             "regress past --tolerance vs the committed "
                             "floors")
    parser.add_argument("--floors", type=Path, default=DEFAULT_OUT,
                        help="committed benchmark file holding the floors "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--tolerance", type=float,
                        default=REGRESSION_TOLERANCE,
                        help="allowed fractional regression for --check "
                             f"(default {REGRESSION_TOLERANCE})")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="records per classification batch for the "
                             "batched engine rungs (default: engine "
                             "default); results are bit-identical for "
                             "any value — this is a throughput knob only")
    args = parser.parse_args(argv)

    # Read the committed floors *before* any writing, in case --out and
    # --floors name the same file.
    floors_blob = None
    if args.check:
        try:
            floors_blob = args.floors.read_text()
        except OSError:
            floors_blob = None

    n_records = 5_000 if args.smoke else args.records
    repeats = 1 if args.smoke else args.repeats
    result = run_bench(n_records, repeats, batch_size=args.batch_size)
    result["smoke"] = args.smoke

    # Carry hand-maintained calibration sections across reruns.
    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except (OSError, ValueError):
            previous = {}
        for section in PRESERVED_SECTIONS:
            if section in previous and section not in result:
                result[section] = previous[section]

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    for kind in ("baseline", "prophet"):
        rps = result[kind]["records_per_sec"]
        print(f"{kind:9s} {rps:>12,.0f} records/sec "
              f"({result[kind]['seconds_best']:.2f}s best of {repeats})")
    path = result["prophet_path"]
    for kind in ("packed", "reference_model", "seed_equivalent"):
        print(f"prophet_path.{kind:16s} {path[kind]['records_per_sec']:>12,.0f} "
              "records/sec")
    print("prophet_path speedups: "
          f"{path['speedup_packed_vs_reference_model']:.3f}x vs reference model, "
          f"{path['speedup_packed_vs_seed_equivalent']:.3f}x vs seed-equivalent")
    fill = result["fill_path"]
    for kind in ("baseline_flat", "baseline_reference",
                 "prophet_flat", "prophet_reference"):
        print(f"fill_path.{kind:19s} {fill[kind]['records_per_sec']:>12,.0f} "
              "records/sec")
    print("fill_path speedups (flat vs reference hierarchy): "
          f"{fill['speedup_flat_vs_reference_baseline']:.3f}x baseline, "
          f"{fill['speedup_flat_vs_reference_prophet']:.3f}x prophet")
    batched = result["batched"]
    for kind in ("baseline_batched", "baseline_flat", "baseline_reference",
                 "prophet_batched", "prophet_flat"):
        print(f"batched.{kind:19s} "
              f"{batched[kind]['records_per_sec']:>12,.0f} records/sec")
    print(f"batched speedups ({BATCHED_WORKLOAD}): "
          f"{batched['speedup_batched_vs_flat_baseline']:.3f}x vs flat "
          f"baseline, "
          f"{batched['speedup_batched_vs_flat_prophet']:.3f}x vs flat "
          f"prophet; "
          f"{BENCH_WORKLOAD} informational "
          f"{batched['spec_workload']['ratio_batched_vs_flat']:.3f}x")
    print(f"wrote {args.out}")

    if args.check:
        if floors_blob is None:
            print(f"[bench-gate] FAIL: no committed floors at {args.floors}",
                  file=sys.stderr)
            return 1
        try:
            committed = json.loads(floors_blob)
        except ValueError:
            print(f"[bench-gate] FAIL: {args.floors} is not valid JSON",
                  file=sys.stderr)
            return 1
        failures = check_floors(result, committed, args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench-gate] FAIL: {failure}", file=sys.stderr)
            return 1
        current = _ratio_metrics(result)
        print("[bench-gate] PASS: "
              + ", ".join(f"{k}={v:.3f}" for k, v in current.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
