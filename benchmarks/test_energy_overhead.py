"""Benchmark: Section 5.11 energy overhead (Prophet vs Triangel).

Paper: ~1.6 % extra memory-hierarchy energy for a 14 % speedup.  Shape
check: the mean overhead is small (single-digit percent), i.e. Prophet's
extra structures and traffic do not blow up the energy budget.
"""

from conftest import records, save_report

from repro.experiments import energy

N = records(100_000)


def test_energy_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: energy.run(N), rounds=1, iterations=1
    )
    print(save_report("energy_overhead", energy.report(N)))
    assert -0.05 < results.mean_overhead < 0.15
