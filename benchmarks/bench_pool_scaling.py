"""Pool-backend scaling benchmark: fan-out cost across execution pools.

Runs one fixed batch of simulation jobs (three workloads x two schemes
plus a profile->prophet dependency chain — the shape ``cli all``
produces) through three pool backends and reports wall-clock plus the
intra-run ratios between them:

- ``serial``   — the historical in-process path (``jobs=1`` local pool);
- ``local``    — ``ProcessPoolExecutor`` fan-out (``--jobs`` workers);
- ``loopback`` — the full SSH wire protocol (bootstrap, JSON-lines RPC,
  per-job payload shipping) against local subprocess workers: the
  per-job *protocol overhead* of the distributed path, minus the
  network.

Gated ratios (committed floors in ``BENCH_pool.json``):

- ``scaling_local_vs_serial``    = t_serial / t_local
- ``scaling_loopback_vs_serial`` = t_serial / t_loopback
- ``overhead_loopback_vs_local`` = t_local  / t_loopback

On a many-core machine the scaling ratios approach the worker count; on
a single-core CI box they hover near (or slightly below) 1.0 — so the
committed floors are deliberately conservative: they exist to catch a
*pathological* regression in pool dispatch overhead (serialization,
protocol chatter, retry machinery on the happy path), not to assert a
speedup the hardware cannot deliver.  Loopback worker boot time is
reported separately (``boot``) and never gated — it is a per-pool,
not per-job, cost.

The benchmark also asserts byte-identical payloads across all three
backends (architecture invariant 13) and exits non-zero on divergence,
so every bench run doubles as a parity check.

Results are written to ``BENCH_pool.json`` next to this file (override
with ``--out``); the hand-maintained ``floors`` and ``seed_reference``
sections survive reruns.

Usage::

    PYTHONPATH=src python benchmarks/bench_pool_scaling.py
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py --smoke
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py \
        --records 40000 --jobs 8 --out /tmp/bench-pool.json
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py \
        --smoke --check --out /tmp/bench-pool-gate.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.runner import LoopbackPool, Runner, SimJob, TraceRef
from repro.runner.runner import payload_to_dict
from repro.sim.config import default_config
from repro.workloads.inputs import make_trace

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_pool.json"

#: The job batch: full-miss-path pointer chasers on both schemes, plus a
#: dependency chain so every backend exercises multi-level dispatch.
BENCH_WORKLOADS = ("mcf_inp", "omnetpp_inp", "sphinx3_an4")
BENCH_SCHEMES = ("baseline", "triangel")

PRESERVED_SECTIONS = ("floors", "seed_reference")

#: Allowed fractional regression for ``--check``.  Wider than the engine
#: bench gate: pool timings include subprocess scheduling, so even
#: intra-run ratios carry more noise on loaded single-core CI machines.
REGRESSION_TOLERANCE = 0.5


def build_jobs(n_records: int) -> list:
    config = default_config()
    jobs = []
    for label in BENCH_WORKLOADS:
        ref = TraceRef.from_trace(make_trace(label, n_records))
        for scheme in BENCH_SCHEMES:
            jobs.append(SimJob(scheme, ref, config))
    # One dependency chain: profile (level 1) -> prophet (level 2).
    mcf = TraceRef.from_trace(make_trace(BENCH_WORKLOADS[0], n_records))
    profile = SimJob("profile", mcf, config)
    jobs.append(SimJob("prophet", mcf, config, deps={"profile": profile}))
    return jobs


def _canon(payloads) -> list:
    return [json.dumps(payload_to_dict(p), sort_keys=True) for p in payloads]


def run_bench(n_records: int, fan_out: int, repeats: int) -> dict:
    jobs = build_jobs(n_records)

    boot_start = time.perf_counter()
    loopback = LoopbackPool(workers=fan_out)
    boot_seconds = time.perf_counter() - boot_start

    def run_serial():
        return Runner(jobs=1, use_cache=False).run(jobs)

    def run_local():
        return Runner(jobs=fan_out, use_cache=False).run(jobs)

    def run_loopback():
        return Runner(use_cache=False, pool=loopback).run(jobs)

    rungs = [("serial", run_serial), ("local", run_local),
             ("loopback", run_loopback)]
    times = {name: [] for name, _ in rungs}
    payloads = {}
    try:
        for _ in range(repeats):
            # Interleaved so machine-load drift cancels in the ratios.
            for name, fn in rungs:
                start = time.perf_counter()
                payloads[name] = fn()
                times[name].append(time.perf_counter() - start)
    finally:
        loopback.close()

    reference = _canon(payloads["serial"])
    for name in ("local", "loopback"):
        if _canon(payloads[name]) != reference:
            raise AssertionError(
                f"invariant 13 violated: {name} payloads differ from serial"
            )

    result = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": list(BENCH_WORKLOADS),
        "schemes": list(BENCH_SCHEMES),
        "job_count": len(jobs) + 1,  # +1: the prophet job's profile dep
        "records": n_records,
        "fan_out": fan_out,
        "parity": "byte-identical payloads across serial/local/loopback",
        "boot": {
            "seconds": round(boot_seconds, 4),
            "workers": fan_out,
            "note": "loopback pool construction + per-worker probe; "
                    "a per-pool cost, reported but never gated",
        },
    }
    for name, _ in rungs:
        best = min(times[name])
        result[name] = {
            "seconds_best": round(best, 4),
            "seconds_all": [round(t, 4) for t in times[name]],
        }
    serial_best = result["serial"]["seconds_best"]
    local_best = result["local"]["seconds_best"]
    loop_best = result["loopback"]["seconds_best"]
    result["scaling_local_vs_serial"] = round(serial_best / local_best, 3)
    result["scaling_loopback_vs_serial"] = round(serial_best / loop_best, 3)
    result["overhead_loopback_vs_local"] = round(local_best / loop_best, 3)
    return result


RATIO_NAMES = (
    "scaling_local_vs_serial",
    "scaling_loopback_vs_serial",
    "overhead_loopback_vs_local",
)


def _ratio_metrics(result: dict) -> dict:
    return {name: result[name] for name in RATIO_NAMES}


def check_floors(result: dict, committed: dict, tolerance: float) -> list:
    """Failure strings for ratios under the committed floors (empty = pass)."""
    floors = dict(committed.get("floors") or {})
    if not floors:
        try:
            floors = _ratio_metrics(committed)
        except (KeyError, TypeError):
            return ["committed benchmark file has neither a 'floors' "
                    "section nor usable run ratios to derive them from"]
    current = _ratio_metrics(result)
    failures = []
    for name, floor in floors.items():
        if not isinstance(floor, (int, float)):
            continue  # the "note" field
        value = current.get(name)
        if value is None:
            continue
        minimum = floor * (1.0 - tolerance)
        if value < minimum:
            failures.append(
                f"{name}: {value:.3f} is below floor {floor:.3f} "
                f"- {tolerance:.0%} = {minimum:.3f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=20_000,
                        help="trace length per job (default 20000)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="fan-out for the local and loopback rungs "
                             "(default 4)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per rung, interleaved (best kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI: checks execution and parity, "
                             "not meaningful scaling")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when the run's ratios regress "
                             "past --tolerance vs the committed floors")
    parser.add_argument("--floors", type=Path, default=DEFAULT_OUT,
                        help="committed benchmark file holding the floors "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--tolerance", type=float,
                        default=REGRESSION_TOLERANCE,
                        help="allowed fractional regression for --check "
                             f"(default {REGRESSION_TOLERANCE})")
    args = parser.parse_args(argv)

    floors_blob = None
    if args.check:
        try:
            floors_blob = args.floors.read_text()
        except OSError:
            floors_blob = None

    n_records = 4_000 if args.smoke else args.records
    repeats = 1 if args.smoke else args.repeats
    fan_out = 2 if args.smoke else args.jobs
    try:
        result = run_bench(n_records, fan_out, repeats)
    except AssertionError as exc:
        print(f"[bench-pool] FAIL: {exc}", file=sys.stderr)
        return 2
    result["smoke"] = args.smoke

    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except (OSError, ValueError):
            previous = {}
        for section in PRESERVED_SECTIONS:
            if section in previous and section not in result:
                result[section] = previous[section]

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    for name in ("serial", "local", "loopback"):
        print(f"{name:9s} {result[name]['seconds_best']:8.3f}s best of "
              f"{repeats}  (jobs={1 if name == 'serial' else fan_out})")
    print(f"loopback boot: {result['boot']['seconds']:.3f}s "
          f"for {fan_out} workers")
    print("ratios: "
          + ", ".join(f"{k}={result[k]:.3f}" for k in RATIO_NAMES))
    print(f"wrote {args.out}")

    if args.check:
        if floors_blob is None:
            print(f"[bench-gate] FAIL: no committed floors at {args.floors}",
                  file=sys.stderr)
            return 1
        try:
            committed = json.loads(floors_blob)
        except ValueError:
            print(f"[bench-gate] FAIL: {args.floors} is not valid JSON",
                  file=sys.stderr)
            return 1
        failures = check_floors(result, committed, args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench-gate] FAIL: {failure}", file=sys.stderr)
            return 1
        current = _ratio_metrics(result)
        print("[bench-gate] PASS: "
              + ", ".join(f"{k}={v:.3f}" for k, v in current.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
