"""Benchmark: regenerate Fig. 18 (2 DRAM channels).

Paper: Prophet 32.27 % > Triangel 18.17 % > RPG2 0.1 %.  Shape check: the
ordering is unchanged when memory bandwidth doubles.
"""

from conftest import records, save_report

from repro.experiments import fig18_bandwidth

N = records(150_000)


def test_fig18_channels(benchmark):
    results = benchmark.pedantic(
        lambda: fig18_bandwidth.run(N), rounds=1, iterations=1
    )
    print(save_report("fig18_bandwidth", results.table("speedup", "Fig. 18")))
    prophet = results.geomean_speedup("prophet")
    triangel = results.geomean_speedup("triangel")
    rpg2 = results.geomean_speedup("rpg2")
    assert prophet > triangel > rpg2
    assert prophet > 1.1
