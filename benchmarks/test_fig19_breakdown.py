"""Benchmark: regenerate Fig. 19 (feature breakdown).

Shape checks: each cumulative Prophet feature is non-regressive in
geomean, the fully featured configuration clearly beats the Triage4 base,
and the resizing step reduces DRAM pressure for the small-footprint
workload (sphinx3 regains LLC ways).
"""

from conftest import records, save_report

from repro.experiments import fig19_breakdown

N = records(120_000)


def test_fig19_breakdown(benchmark):
    results = benchmark.pedantic(
        lambda: fig19_breakdown.run(N), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            results.table("speedup", "Fig. 19a"),
            results.table("traffic", "Fig. 19b"),
        ]
    )
    print(save_report("fig19_breakdown", text))
    base = results.geomean_of("speedup", "Triage4+Meta")
    full = results.geomean_of("speedup", "+Resize")
    assert full > base + 0.02
    # Each step roughly non-regressive (small tolerance for noise).
    order = ["Triage4+Meta", "+Repla", "+Insert", "+MVB", "+Resize"]
    for earlier, later in zip(order, order[1:]):
        assert (
            results.geomean_of("speedup", later)
            >= results.geomean_of("speedup", earlier) - 0.03
        )
