"""Benchmark: regenerate Fig. 6 (per-PC accuracy levels, omnetpp).

Shape check: active PCs stratify into at least two distinct accuracy
levels — the property that makes 3-bit per-PC hints sufficient.
"""

from conftest import records, save_report

from repro.experiments import fig06_accuracy_levels

N = records(120_000)


def test_fig06_accuracy_levels(benchmark):
    levels = benchmark.pedantic(
        lambda: fig06_accuracy_levels.measure_levels(N), rounds=1, iterations=1
    )
    print(save_report("fig06_accuracy_levels", fig06_accuracy_levels.report(N)))
    assert len(levels.per_pc) >= 3
    assert levels.stratified
    accs = sorted(levels.per_pc.values())
    assert accs[-1] - accs[0] > 0.3  # levels are far apart
