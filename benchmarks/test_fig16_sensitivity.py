"""Benchmark: regenerate Fig. 16 (parameter sensitivity).

Shape checks: EL_ACC=0.15 (the paper's default) is at least as good as
both extremes; priority bits give small monotone-ish gains; MVB
candidate=1 is the best trade-off (extra candidates never help geomean).
"""

from conftest import records, save_report

from repro.experiments import fig16_sensitivity

N = records(100_000)


def test_fig16_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: fig16_sensitivity.run(N), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            results.table("el_acc", "Fig. 16a"),
            results.table("n_bits", "Fig. 16b"),
            results.table("mvb", "Fig. 16c"),
        ]
    )
    print(save_report("fig16_sensitivity", text))

    mid = results.geomean_of("el_acc", "EL_ACC=0.15")
    lo = results.geomean_of("el_acc", "EL_ACC=0.05")
    hi = results.geomean_of("el_acc", "EL_ACC=0.25")
    assert mid >= max(lo, hi) - 0.02  # interior optimum (within noise)

    n1 = results.geomean_of("n_bits", "n=1")
    n3 = results.geomean_of("n_bits", "n=3")
    assert n3 >= n1 - 0.02  # finer levels do not hurt

    c1 = results.geomean_of("mvb", "Candidate=1")
    c4 = results.geomean_of("mvb", "Candidate=4")
    assert c1 >= c4 - 0.02  # 1 candidate is the sweet spot
