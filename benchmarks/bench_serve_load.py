"""Serve-mode load benchmark: req/s, tail latency, dedup absorption.

Hammers a ``repro.serve`` service with a **closed-loop multi-threaded
client** (every client thread submits a request, polls the job to
completion, fetches the result, then immediately issues the next one)
over a mix of:

- **duplicate** requests — one fixed experiment submission repeated by
  every client, exercising both dedup layers: concurrent copies coalesce
  onto the in-flight job, later copies are served straight from the
  result table;
- **distinct** requests — a pool of small submissions differing in
  record count, exercising end-to-end execution under concurrency (and,
  underneath, the shared ``.repro-cache`` across repeated sweeps).

By default the benchmark spawns its own server (``python -m repro.cli
serve --port 0``) so the measured path is the real subprocess service,
not an in-process shortcut; point ``--url`` at a running server to
load-test across machines.

Every completed response is checked for **byte parity** against a
direct in-process ``api.run`` of the same request (the service
canonicalizes ``elapsed`` to 0.0 — results are deterministic bytes).

Output (``BENCH_serve.json``, preserved section-wise across runs):
sustained req/s, p50/p95/p99 latency, and the dedup/cache absorption
ratios.  ``--smoke`` shrinks the run for CI and still requires at least
one dedup hit and full parity.

``--overload`` switches to the backpressure benchmark: the server is
spawned with a small ``--max-queue``, the client fleet is sized at ~2x
capacity (workers + queue slots), and every request is distinct, so
admission control *must* reject some submissions with 429.  Clients
honor the ``Retry-After`` hint and resubmit; the run records the 429
rate, the post-backoff completion ratio (must be 1.0), tail latency
under saturation, and the maximum queue depth a monitor thread ever
observed (must stay within the bound).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:
    sys.path.insert(0, str(SRC_ROOT))

import repro.api as api  # noqa: E402
from repro.runner import ExecutionPolicy  # noqa: E402
from repro.serve import ServeClient, canonical_result_json  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_serve.json"

#: The fixed submission every duplicate request repeats.
DUPLICATE_REQUEST = {
    "experiment": "fig10",
    "records": 3000,
    "workloads": ["mcf_inp"],
    "schemes": ["triangel"],
}


def distinct_requests(count: int, base_records: int = 2000) -> list:
    """``count`` small submissions that can never dedup onto each other.

    Record counts differ, so the request digests differ, so each is a
    real job — the non-absorbable share of the traffic.
    """
    return [
        {
            "experiment": "fig10",
            "records": base_records + 100 * i,
            "workloads": ["mcf_inp"],
            "schemes": ["triangel"],
        }
        for i in range(count)
    ]


def percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


# ----------------------------------------------------------------------
# server lifecycle
# ----------------------------------------------------------------------
def spawn_server(
    workers: int, runner_jobs: int, cache_dir: str, max_queue: int = 64
):
    """Start ``python -m repro.cli serve`` and scrape the announced URL."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_ROOT) + os.pathsep + existing if existing else str(SRC_ROOT)
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--workers", str(workers),
            "--jobs", str(runner_jobs),
            "--cache-dir", cache_dir,
            "--max-queue", str(max_queue),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    if "serving on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to announce itself: {line!r}")
    url = line.split()[2]
    return proc, url


# ----------------------------------------------------------------------
# the closed loop
# ----------------------------------------------------------------------
def client_loop(
    url: str,
    client_id: int,
    n_requests: int,
    dup_fraction: float,
    pool: list,
    out_latencies: list,
    out_errors: list,
    dedup_flags: list,
    lock: threading.Lock,
) -> None:
    """One closed-loop client: submit -> poll -> fetch, ``n_requests`` times.

    Seeded per client, so the duplicate/distinct interleaving is
    reproducible run to run.
    """
    rng = random.Random(0xC0FFEE + client_id)
    client = ServeClient(url, timeout=60.0)
    for i in range(n_requests):
        if rng.random() < dup_fraction:
            payload = DUPLICATE_REQUEST
        else:
            payload = pool[(client_id + i) % len(pool)]
        start = time.perf_counter()
        try:
            status, body = client.submit(payload)
            if "job" not in body:
                raise RuntimeError(f"rejected ({status}): {body}")
            job_id = body["job"]["id"]
            summary = client.wait(job_id, timeout=120.0, interval=0.005)
            if summary["state"] != "done":
                raise RuntimeError(f"job failed: {summary['error']}")
            client.result_bytes(job_id)
        except Exception as exc:  # noqa: BLE001 - collect, don't crash the loop
            with lock:
                out_errors.append(f"client {client_id} req {i}: {exc}")
            continue
        elapsed = time.perf_counter() - start
        with lock:
            out_latencies.append(elapsed)
            dedup_flags.append(bool(body.get("deduped")))


def check_parity(url: str, requests: list) -> dict:
    """Every request's served bytes vs a direct in-process ``api.run``."""
    client = ServeClient(url, timeout=60.0)
    identical = 0
    mismatches = []
    for payload in requests:
        served = client.run(payload, timeout=120.0)
        direct = api.run(
            payload["experiment"],
            records=payload.get("records"),
            workloads=payload.get("workloads"),
            schemes=payload.get("schemes"),
            overrides=payload.get("overrides") or {},
            # Serial in-process reference executor: parity must hold
            # against *any* backend (invariant 13), so use the simplest.
            execution=ExecutionPolicy(pool="inline"),
        )
        expected = canonical_result_json(direct).encode()
        if served == expected:
            identical += 1
        else:
            mismatches.append(payload)
    return {
        "checked": len(requests),
        "identical": identical,
        "mismatches": mismatches,
    }


# ----------------------------------------------------------------------
def run_bench(
    url: str,
    clients: int,
    requests_per_client: int,
    dup_fraction: float,
    distinct_pool: int,
) -> dict:
    pool = distinct_requests(distinct_pool)
    service = ServeClient(url, timeout=60.0)
    stats_before = service.stats()

    latencies: list = []
    errors: list = []
    dedup_flags: list = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=client_loop,
            args=(url, i, requests_per_client, dup_fraction, pool,
                  latencies, errors, dedup_flags, lock),
        )
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    stats_after = service.stats()
    parity = check_parity(url, [DUPLICATE_REQUEST] + pool)

    latencies.sort()
    completed = len(latencies)
    jobs = stats_after["jobs"]
    runner = stats_after["runner"]
    d_submitted = jobs["submitted"] - stats_before["jobs"]["submitted"]
    d_dedup = jobs["dedup_hits"] - stats_before["jobs"]["dedup_hits"]
    d_executed = runner["executed"] - stats_before["runner"]["executed"]
    d_cache = runner["cache_hits"] - stats_before["runner"]["cache_hits"]
    return {
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "dup_fraction": dup_fraction,
            "distinct_pool": distinct_pool,
            "duplicate_request": DUPLICATE_REQUEST,
        },
        "throughput": {
            "requests_completed": completed,
            "requests_failed": len(errors),
            "wall_seconds": round(wall, 3),
            "req_per_sec": round(completed / wall, 2) if wall else 0.0,
        },
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 2),
            "p95": round(percentile(latencies, 0.95) * 1e3, 2),
            "p99": round(percentile(latencies, 0.99) * 1e3, 2),
            "mean": round(sum(latencies) / completed * 1e3, 2)
            if completed else 0.0,
            "max": round(latencies[-1] * 1e3, 2) if latencies else 0.0,
        },
        "absorption": {
            "requests_submitted": d_submitted,
            "dedup_hits": d_dedup,
            "dedup_inflight": (jobs["dedup_inflight"]
                               - stats_before["jobs"]["dedup_inflight"]),
            "dedup_done": (jobs["dedup_done"]
                           - stats_before["jobs"]["dedup_done"]),
            "dedup_ratio": round(d_dedup / d_submitted, 4)
            if d_submitted else 0.0,
            "runner_executed": d_executed,
            "runner_cache_hits": d_cache,
            "sim_cache_ratio": round(d_cache / (d_cache + d_executed), 4)
            if (d_cache + d_executed) else 0.0,
        },
        "parity": parity,
        "errors": errors[:10],
    }


# ----------------------------------------------------------------------
# overload mode: more clients than the admission bound allows
# ----------------------------------------------------------------------
def overload_client(
    url: str,
    client_id: int,
    n_requests: int,
    requests_per_client: int,
    out_latencies: list,
    out_rejections: list,
    out_errors: list,
    lock: threading.Lock,
) -> None:
    """One overload client: submit distinct jobs, back off on every 429.

    Each (client, request) pair gets a unique record count, so nothing
    dedups — every submission competes for a real queue slot.  The
    retry sleep honors the server's ``retry_after`` hint, capped so the
    benchmark stays fast.
    """
    client = ServeClient(url, timeout=60.0)
    for i in range(n_requests):
        idx = client_id * requests_per_client + i
        payload = {
            "experiment": "fig10",
            "records": 1500 + 50 * idx,
            "workloads": ["mcf_inp"],
            "schemes": ["triangel"],
        }
        start = time.perf_counter()
        try:
            while True:
                status, body = client.submit(payload)
                if status == 429:
                    details = body.get("error", {}).get("details", {})
                    hint = details.get("retry_after") or 0.25
                    with lock:
                        out_rejections.append(idx)
                    time.sleep(min(float(hint), 0.25))
                    continue
                if "job" not in body:
                    raise RuntimeError(f"rejected ({status}): {body}")
                break
            summary = client.wait(body["job"]["id"], timeout=120.0,
                                  interval=0.005)
            if summary["state"] != "done":
                raise RuntimeError(f"job failed: {summary['error']}")
        except Exception as exc:  # noqa: BLE001 - collect, don't crash the loop
            with lock:
                out_errors.append(f"client {client_id} req {i}: {exc}")
            continue
        with lock:
            out_latencies.append(time.perf_counter() - start)


def run_overload_bench(
    url: str,
    clients: int,
    requests_per_client: int,
    max_queue: int,
    workers: int,
) -> dict:
    """Drive ~2x-capacity load and measure how admission control holds.

    Capacity = workers + queue slots; ``clients`` is sized above it, so
    a healthy run *must* see 429s — and, because every client backs off
    and retries, must still complete every request eventually.
    """
    service = ServeClient(url, timeout=60.0)
    stats_before = service.stats()

    latencies: list = []
    rejections: list = []
    errors: list = []
    lock = threading.Lock()
    depth_samples: list = []
    stop = threading.Event()

    queued_samples: list = []

    def monitor() -> None:
        mon = ServeClient(url, timeout=10.0)
        while not stop.is_set():
            try:
                stats = mon.stats()
            except Exception:  # noqa: BLE001 - server may be briefly saturated
                stop.wait(0.02)
                continue
            depth_samples.append(stats["queue_depth"])
            queued_samples.append(stats["queued"])
            stop.wait(0.02)

    mon_thread = threading.Thread(target=monitor, daemon=True)
    threads = [
        threading.Thread(
            target=overload_client,
            args=(url, i, requests_per_client, requests_per_client,
                  latencies, rejections, errors, lock),
        )
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    mon_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    stop.set()
    mon_thread.join(timeout=5)

    stats_after = service.stats()
    rejected_full = (stats_after["jobs"]["rejected_full"]
                     - stats_before["jobs"]["rejected_full"])
    total = clients * requests_per_client
    completed = len(latencies)
    submits = completed + len(rejections)
    latencies.sort()
    return {
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "max_queue": max_queue,
            "workers": workers,
            "capacity": workers + max_queue,
        },
        "throughput": {
            "requests_total": total,
            "requests_completed": completed,
            "requests_failed": len(errors),
            "wall_seconds": round(wall, 3),
            "req_per_sec": round(completed / wall, 2) if wall else 0.0,
        },
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 2),
            "p95": round(percentile(latencies, 0.95) * 1e3, 2),
            "p99": round(percentile(latencies, 0.99) * 1e3, 2),
            "max": round(latencies[-1] * 1e3, 2) if latencies else 0.0,
        },
        "backpressure": {
            "rejections_client_observed": len(rejections),
            "rejections_server_counted": rejected_full,
            "rejection_rate": round(len(rejections) / submits, 4)
            if submits else 0.0,
            "completion_ratio": round(completed / total, 4) if total else 0.0,
            "max_queued_observed": max(queued_samples, default=0),
            "max_pending_observed": max(depth_samples, default=0),
            "depth_samples": len(depth_samples),
        },
        "errors": errors[:10],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small run for CI (4 clients x 5 requests); "
                             "still asserts dedup and byte parity")
    parser.add_argument("--overload", action="store_true",
                        help="overload mode: clients > queue capacity, "
                             "measuring 429 rate, post-backoff completion "
                             "and bounded queue depth")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="admission bound for the spawned server "
                             "(default 4 in overload mode, 64 otherwise)")
    parser.add_argument("--url", default=None,
                        help="target an already-running server instead of "
                             "spawning one")
    parser.add_argument("--clients", type=int, default=None,
                        help="closed-loop client threads "
                             "(default 4 smoke / 16 full)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 5 smoke / 25 full)")
    parser.add_argument("--dup-fraction", type=float, default=0.6,
                        help="probability a request is the duplicate "
                             "template (default 0.6)")
    parser.add_argument("--distinct-pool", type=int, default=None,
                        help="number of distinct request templates "
                             "(default 4 smoke / 10 full)")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads when spawning "
                             "(default 4)")
    parser.add_argument("--runner-jobs", type=int, default=1,
                        help="runner process-pool size when spawning "
                             "(default 1: thread-level concurrency only)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    if args.overload:
        # Size the fleet at ~2x capacity so admission control must act.
        max_queue = args.max_queue or 4
        clients = args.clients or 2 * (args.workers + max_queue)
        requests = args.requests or (2 if args.smoke else 4)
    else:
        max_queue = args.max_queue or 64
        clients = args.clients or (4 if args.smoke else 16)
        requests = args.requests or (5 if args.smoke else 25)
    pool_size = args.distinct_pool or (4 if args.smoke else 10)

    proc = None
    tmpdir = None
    if args.url is not None:
        url = args.url
    else:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        proc, url = spawn_server(args.workers, args.runner_jobs, tmpdir.name,
                                 max_queue=max_queue)
    try:
        if args.overload:
            result = run_overload_bench(
                url, clients, requests, max_queue, args.workers
            )
        else:
            result = run_bench(
                url, clients, requests, args.dup_fraction, pool_size
            )
    finally:
        if proc is not None:
            try:
                ServeClient(url, timeout=5.0).shutdown()
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 - teardown best-effort
                proc.kill()
        if tmpdir is not None:
            tmpdir.cleanup()

    mode = "overload" if args.overload else ("smoke" if args.smoke else "full")
    result["mode"] = mode
    section = {mode: result}

    # Preserve the other mode's section across reruns (the committed
    # file carries a reference-machine 'full' run; CI rewrites 'smoke').
    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except (OSError, ValueError):
            previous = {}
        for key, value in previous.items():
            if key not in section:
                section[key] = value
    args.out.write_text(json.dumps(section, indent=2) + "\n")

    thr = result["throughput"]
    lat = result["latency_ms"]
    print(f"[{mode}] {thr['requests_completed']} requests in "
          f"{thr['wall_seconds']}s -> {thr['req_per_sec']} req/s")
    print(f"latency ms: p50={lat['p50']} p95={lat['p95']} p99={lat['p99']} "
          f"max={lat['max']}")
    failures = []
    if args.overload:
        back = result["backpressure"]
        print(f"backpressure: {back['rejections_client_observed']} 429s "
              f"(server counted {back['rejections_server_counted']}), "
              f"rejection rate {back['rejection_rate']}, completion ratio "
              f"{back['completion_ratio']}, max queued "
              f"{back['max_queued_observed']}/{max_queue}")
        # A healthy overload run is rejected AND recovers: backoff turns
        # every 429 into an eventual completion, queue stays bounded.
        if back["rejections_client_observed"] < 1:
            failures.append("overload run never hit the admission bound")
        if back["completion_ratio"] != 1.0:
            failures.append(
                f"completion ratio {back['completion_ratio']} != 1.0 "
                "after backoff"
            )
        if back["max_queued_observed"] > max_queue:
            failures.append(
                f"queued depth {back['max_queued_observed']} exceeded "
                f"the admission bound {max_queue}"
            )
    else:
        absorb = result["absorption"]
        parity = result["parity"]
        print(f"absorption: "
              f"{absorb['dedup_hits']}/{absorb['requests_submitted']} "
              f"deduped (ratio {absorb['dedup_ratio']}), runner executed "
              f"{absorb['runner_executed']} / cache hits "
              f"{absorb['runner_cache_hits']}")
        print(f"parity: {parity['identical']}/{parity['checked']} "
              f"byte-identical to direct api.run")
        if absorb["dedup_hits"] < 1:
            failures.append("expected at least one dedup hit")
        if parity["identical"] != parity["checked"]:
            failures.append(f"parity mismatches: {parity['mismatches']}")
    print(f"wrote {args.out}")

    if thr["requests_failed"]:
        failures.append(
            f"{thr['requests_failed']} request(s) failed: "
            + "; ".join(result["errors"][:3])
        )
    if failures:
        print("FAIL: " + " | ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
