"""Benchmark: regenerate Fig. 10 (IPC speedup, SPEC workloads).

Paper's rows (geomean): Prophet +34.58 %, Triangel +20.35 %, RPG2 +0.1 %
over the no-temporal-prefetcher baseline.  The assertions check the
*shape*: Prophet > Triangel > RPG2, RPG2 ~ 1.0.
"""

from conftest import records, save_report

from repro.experiments import fig10_speedup

N = records(200_000)


def test_fig10_speedup(benchmark):
    results = benchmark.pedantic(
        lambda: fig10_speedup.run(N), rounds=1, iterations=1
    )
    print(save_report("fig10_speedup", results.table("speedup", "Fig. 10")))
    prophet = results.geomean_speedup("prophet")
    triangel = results.geomean_speedup("triangel")
    rpg2 = results.geomean_speedup("rpg2")
    assert prophet > triangel > rpg2
    assert prophet > 1.15
    assert abs(rpg2 - 1.0) < 0.05
