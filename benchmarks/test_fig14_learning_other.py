"""Benchmark: regenerate Fig. 14 (learning generalizes: astar, soplex).

Shape check per app: after learning both inputs, the single binary's
geomean beats Disable and approaches Direct.
"""

from conftest import records, save_report

from repro.experiments import fig14_learning_other

N = records(100_000)


def test_fig14_learning_other(benchmark):
    results = benchmark.pedantic(
        lambda: fig14_learning_other.run(N), rounds=1, iterations=1
    )
    print(save_report("fig14_learning_other", fig14_learning_other.report(N)))
    for app, res in results.items():
        final_state = res.states[-2]  # the last learned state
        final = res.geomean_of(final_state)
        disable = res.geomean_of("Disable")
        direct = res.geomean_of("Direct")
        assert final > disable, app
        assert final >= disable + 0.5 * (direct - disable), app
