"""Benchmark: scheme ordering under realistic virtual memory.

Extension bench (no paper figure): adds a 64-entry data TLB and confines
the physically-indexed L1 prefetcher to 4 KiB pages, then re-runs the
Fig. 10 comparison.  The shape assertion is that Prophet > Triangel >
RPG2 survives — Prophet's advantage lives in L2 metadata management,
which virtual-memory costs do not touch.
"""

from conftest import records, save_report

from repro.experiments import tlb_sensitivity

N = records(120_000)


def test_tlb_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: tlb_sensitivity.run(N), rounds=1, iterations=1
    )
    print(
        save_report(
            "tlb_sensitivity",
            results.table("speedup", "Realistic VM — IPC speedup"),
        )
    )
    prophet = results.geomean_speedup("prophet")
    triangel = results.geomean_speedup("triangel")
    rpg2 = results.geomean_speedup("rpg2")
    assert prophet > triangel > rpg2
    assert prophet > 1.10
